"""Two-level page tables: entry format, walker, address-space builder.

The PTE/PDE format (one 32-bit word)::

    31                    12 11      6  5   4   3   2   1   0
    +-----------------------+---------+----+---+---+---+---+---+
    |      frame number     | (unused)| NX | D | A | U | W | P |
    +-----------------------+---------+----+---+---+---+---+---+

Permissions combine across levels the way modern x86 does: an access is
allowed only if *both* the PDE and the PTE allow it (W for writes, U for
user-mode accesses). Accessed bits are set at both levels on a
successful walk; the dirty bit is set at the leaf on writes.
"""

import enum
import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.mem.physmem import FrameAllocator, PhysicalMemory
from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SHIFT

PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_ACCESSED = 1 << 3
PTE_DIRTY = 1 << 4
PTE_NOEXEC = 1 << 5

_FLAGS_MASK = (1 << PAGE_SHIFT) - 1

_U32 = struct.Struct("<I")

#: Entries per page-table page (4096 / 4).
ENTRIES_PER_TABLE = 1024


class AccessType(enum.Enum):
    """The three access kinds a walk can be performed for."""

    READ = "read"
    WRITE = "write"
    EXEC = "exec"


@dataclass
class PageFault(Exception):
    """Raised by the walker/TLB when a translation cannot be completed.

    ``present`` distinguishes protection faults (True: the mapping exists
    but forbids this access) from not-present faults (False).
    """

    vaddr: int
    access: AccessType
    user: bool
    present: bool

    def __str__(self) -> str:
        kind = "protection" if self.present else "not-present"
        mode = "user" if self.user else "kernel"
        return (
            f"page fault: {kind} on {self.access.value} of "
            f"{self.vaddr:#010x} in {mode} mode"
        )


def make_pte(pfn: int, flags: int) -> int:
    """Build an entry from a frame number and flag bits."""
    if pfn < 0 or pfn >= (1 << (32 - PAGE_SHIFT)):
        raise MemoryError_(f"PFN {pfn} out of range")
    if flags & ~_FLAGS_MASK:
        raise MemoryError_(f"flags {flags:#x} overlap the frame field")
    return (pfn << PAGE_SHIFT) | flags


def pte_frame(pte: int) -> int:
    """Extract the frame number from an entry."""
    return pte >> PAGE_SHIFT


def split_vaddr(va: int) -> Tuple[int, int, int]:
    """Split a 32-bit virtual address into (dir index, table index, offset)."""
    va &= 0xFFFFFFFF
    return (va >> 22) & 0x3FF, (va >> 12) & 0x3FF, va & 0xFFF


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a successful page-table walk."""

    paddr: int
    pte_paddr: int  # physical address of the leaf PTE (for W^X tricks, dirty scan)
    pte: int
    mem_refs: int  # memory references the walk performed (2 for 2 levels)


class PageTableWalker:
    """Walks 2-level tables stored in a :class:`PhysicalMemory`."""

    def __init__(self, physmem: PhysicalMemory):
        self.physmem = physmem
        self.walks = 0
        self.faults = 0

    def walk(
        self,
        root_pa: int,
        va: int,
        access: AccessType,
        user: bool,
        set_ad: bool = True,
    ) -> WalkResult:
        """Translate ``va``; raise :class:`PageFault` on failure.

        ``root_pa`` is the physical address of the page directory.
        ``user`` is the privilege of the access (True = user mode).
        """
        self.walks += 1
        dir_idx, tbl_idx, offset = split_vaddr(va)

        pde_pa = root_pa + dir_idx * 4
        pde = self.physmem.read_u32(pde_pa)
        if not pde & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)

        pte_pa = (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
        pte = self.physmem.read_u32(pte_pa)
        if not pte & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)

        combined = pde & pte
        if user and not combined & PTE_USER:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.WRITE and not combined & PTE_WRITABLE:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.EXEC and pte & PTE_NOEXEC:
            self.faults += 1
            raise PageFault(va, access, user, present=True)

        if set_ad:
            new_pde = pde | PTE_ACCESSED
            if new_pde != pde:
                self.physmem.write_u32(pde_pa, new_pde)
            new_pte = pte | PTE_ACCESSED
            if access is AccessType.WRITE:
                new_pte |= PTE_DIRTY
            if new_pte != pte:
                self.physmem.write_u32(pte_pa, new_pte)
                pte = new_pte

        return WalkResult(
            paddr=(pte_frame(pte) << PAGE_SHIFT) | offset,
            pte_paddr=pte_pa,
            pte=pte,
            mem_refs=2,
        )

    def walk_quick(
        self, root_pa: int, va: int, access: AccessType, user: bool
    ) -> int:
        """Translate ``va`` and return the post-A/D leaf PTE.

        Semantically identical to :meth:`walk` with ``set_ad=True`` --
        same walk/fault counting, same fault order, same A/D update
        order -- but reads table entries straight from the backing
        buffer and skips the :class:`WalkResult` allocation. A/D
        updates still go through ``physmem.write_u32`` so write
        watchers (SMC invalidation, dirty tracking) observe them. This
        is the hot translate path of :class:`~repro.cpu.mmu.BareMMU`;
        the virtualized MMUs keep the structured :meth:`walk`.
        """
        self.walks += 1
        pm = self.physmem
        buf = pm._data
        size = pm.size
        pde_pa = root_pa + ((va >> 22) & 0x3FF) * 4
        if pde_pa + 4 > size:
            pm.read_u32(pde_pa)  # out of RAM: raise the canonical error
        pde = _U32.unpack_from(buf, pde_pa)[0]
        if not pde & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)
        pte_pa = (pde >> PAGE_SHIFT << PAGE_SHIFT) + ((va >> 12) & 0x3FF) * 4
        if pte_pa + 4 > size:
            pm.read_u32(pte_pa)
        pte = _U32.unpack_from(buf, pte_pa)[0]
        if not pte & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)
        combined = pde & pte
        if user and not combined & PTE_USER:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.WRITE and not combined & PTE_WRITABLE:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.EXEC and pte & PTE_NOEXEC:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        new_pde = pde | PTE_ACCESSED
        if new_pde != pde:
            pm.write_u32(pde_pa, new_pde)
        new_pte = pte | PTE_ACCESSED
        if access is AccessType.WRITE:
            new_pte |= PTE_DIRTY
        if new_pte != pte:
            pm.write_u32(pte_pa, new_pte)
            pte = new_pte
        return pte


@dataclass
class GStageFault(Exception):
    """Raised by the G-stage walker when a guest-physical address cannot
    be translated to a host-physical one.

    This is the memory-layer analogue of an EPT violation: ``present``
    distinguishes a write denied by a read-only G-stage entry (True,
    e.g. dirty logging) from an unmapped guest frame (False). The
    H-mode MMU maps it onto a :class:`~repro.cpu.exits.VMExit`; the
    memory layer itself stays free of CPU-package imports.
    """

    gpa: int
    access: AccessType
    present: bool

    def __str__(self) -> str:
        kind = "write-protected" if self.present else "unmapped"
        return (
            f"G-stage fault: {kind} on {self.access.value} of "
            f"guest-physical {self.gpa:#010x}"
        )


@dataclass(frozen=True)
class TwoStageResult:
    """Outcome of a successful hardware two-stage walk."""

    hpaddr: int  # host-physical address of the data
    gpaddr: int  # guest-physical address (after the guest stage)
    pte: int  # guest leaf PTE, post-A/D
    combined: int  # guest PDE & PTE (joint permission bits)
    guest_refs: int  # guest page-table entry reads
    gstage_refs: int  # G-stage page-table entry reads


class TwoStageWalker:
    """Hardware-walked two-stage translation (H-mode; VS-stage over G-stage).

    Both stages are ordinary 2-level tables in the same PTE format. The
    guest stage lives in guest-physical memory, so each of its entry
    reads is itself G-stage translated; with 2-level tables on both
    sides a cold walk costs ``2 x (2 + 1) + 2 = 8`` entry references --
    the same (n+1)(m+1)-1 amplification as software nested paging,
    but walked "in hardware": no exits, and the walker maintains
    accessed/dirty bits at *both* stages (the G-stage A/D updates are
    what pre-copy migration reads instead of write-protection exits).
    """

    def __init__(self, physmem: PhysicalMemory):
        self.physmem = physmem
        self.walks = 0
        self.faults = 0
        self.gstage_faults = 0

    def gstage_walk(
        self, gstage_root: int, gpa: int, access: AccessType,
        set_ad: bool = True,
    ) -> Tuple[int, int]:
        """Translate one gPA through the G-stage; return (hpa, refs).

        Raises :class:`GStageFault` when unmapped or when a write hits
        a non-writable entry. On success sets ACCESSED at both G-stage
        levels and DIRTY at the leaf for writes.
        """
        dir_idx, tbl_idx, offset = split_vaddr(gpa)
        pde_pa = gstage_root + dir_idx * 4
        pde = self.physmem.read_u32(pde_pa)
        if not pde & PTE_PRESENT:
            self.gstage_faults += 1
            raise GStageFault(gpa, access, present=False)
        pte_pa = (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
        pte = self.physmem.read_u32(pte_pa)
        if not pte & PTE_PRESENT:
            self.gstage_faults += 1
            raise GStageFault(gpa, access, present=False)
        if access is AccessType.WRITE and not (pde & pte & PTE_WRITABLE):
            self.gstage_faults += 1
            raise GStageFault(gpa, access, present=True)
        if set_ad:
            new_pde = pde | PTE_ACCESSED
            if new_pde != pde:
                self.physmem.write_u32(pde_pa, new_pde)
            new_pte = pte | PTE_ACCESSED
            if access is AccessType.WRITE:
                new_pte |= PTE_DIRTY
            if new_pte != pte:
                self.physmem.write_u32(pte_pa, new_pte)
                pte = new_pte
        return (pte_frame(pte) << PAGE_SHIFT) | offset, 2

    def walk(
        self,
        gstage_root: int,
        guest_root: int,
        va: int,
        access: AccessType,
        user: bool,
    ) -> TwoStageResult:
        """Full two-stage translation of a guest virtual address.

        Guest-visible behaviour (fault order, guest A/D updates) is
        identical to :class:`PageTableWalker`; every guest table access
        additionally passes through the G-stage, including the write-back
        of guest A/D bits (so dirty logging captures page-table pages,
        exactly as under software nested paging).
        """
        self.walks += 1
        guest_refs = 0
        gstage_refs = 0
        dir_idx, tbl_idx, offset = split_vaddr(va)

        pde_gpa = guest_root + dir_idx * 4
        pde_hpa, r = self.gstage_walk(gstage_root, pde_gpa, AccessType.READ)
        gstage_refs += r
        guest_refs += 1
        pde = self.physmem.read_u32(pde_hpa)
        if not pde & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)

        pte_gpa = (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
        pte_hpa, r = self.gstage_walk(gstage_root, pte_gpa, AccessType.READ)
        gstage_refs += r
        guest_refs += 1
        gpte = self.physmem.read_u32(pte_hpa)
        if not gpte & PTE_PRESENT:
            self.faults += 1
            raise PageFault(va, access, user, present=False)

        combined = pde & gpte
        if user and not combined & PTE_USER:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.WRITE and not combined & PTE_WRITABLE:
            self.faults += 1
            raise PageFault(va, access, user, present=True)
        if access is AccessType.EXEC and gpte & PTE_NOEXEC:
            self.faults += 1
            raise PageFault(va, access, user, present=True)

        # Guest A/D write-back: a guest-physical *write*, re-walked
        # through the G-stage with write permission.
        if not pde & PTE_ACCESSED:
            pde_hpa_w, r = self.gstage_walk(
                gstage_root, pde_gpa, AccessType.WRITE
            )
            gstage_refs += r
            self.physmem.write_u32(pde_hpa_w, pde | PTE_ACCESSED)
        new_gpte = gpte | PTE_ACCESSED
        if access is AccessType.WRITE:
            new_gpte |= PTE_DIRTY
        if new_gpte != gpte:
            pte_hpa_w, r = self.gstage_walk(
                gstage_root, pte_gpa, AccessType.WRITE
            )
            gstage_refs += r
            self.physmem.write_u32(pte_hpa_w, new_gpte)
            gpte = new_gpte

        gpa = (pte_frame(gpte) << PAGE_SHIFT) | offset
        hpa, r = self.gstage_walk(gstage_root, gpa, access)
        gstage_refs += r

        return TwoStageResult(
            hpaddr=hpa,
            gpaddr=gpa,
            pte=gpte,
            combined=combined,
            guest_refs=guest_refs,
            gstage_refs=gstage_refs,
        )


class AddressSpace:
    """Owns one page-table tree and provides map/unmap/protect.

    Used by the guest kernel builder (to construct guest page tables in
    guest-physical memory) and by the VMM (to construct shadow and nested
    tables in host-physical memory). Page-table pages are allocated from
    the supplied :class:`FrameAllocator` and returned on teardown.
    """

    def __init__(self, physmem: PhysicalMemory, allocator: FrameAllocator):
        self.physmem = physmem
        self.allocator = allocator
        self.root_pfn = allocator.alloc(zero=True)
        self._table_frames = [self.root_pfn]
        self.mapped_pages = 0

    @property
    def root_pa(self) -> int:
        return self.root_pfn << PAGE_SHIFT

    def map(self, va: int, pa: int, flags: int) -> None:
        """Install a 4 KiB mapping; allocates an inner table if needed."""
        if pa & _FLAGS_MASK:
            raise MemoryError_(f"physical address {pa:#x} not page-aligned")
        if va & _FLAGS_MASK:
            raise MemoryError_(f"virtual address {va:#x} not page-aligned")
        dir_idx, tbl_idx, _ = split_vaddr(va)
        pde_pa = self.root_pa + dir_idx * 4
        pde = self.physmem.read_u32(pde_pa)
        if not pde & PTE_PRESENT:
            table_pfn = self.allocator.alloc(zero=True)
            self._table_frames.append(table_pfn)
            # Directory entries carry the union of permissions; leaf PTEs
            # then restrict. Granting W|U here matches common kernels.
            pde = make_pte(table_pfn, PTE_PRESENT | PTE_WRITABLE | PTE_USER)
            self.physmem.write_u32(pde_pa, pde)
        pte_pa = (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
        old = self.physmem.read_u32(pte_pa)
        if not old & PTE_PRESENT:
            self.mapped_pages += 1
        self.physmem.write_u32(pte_pa, make_pte(pa >> PAGE_SHIFT, flags | PTE_PRESENT))

    def unmap(self, va: int) -> None:
        """Remove a mapping (leaves inner tables in place)."""
        pte_pa = self._pte_pa(va)
        if pte_pa is None:
            return
        if self.physmem.read_u32(pte_pa) & PTE_PRESENT:
            self.mapped_pages -= 1
        self.physmem.write_u32(pte_pa, 0)

    def protect(self, va: int, flags: int) -> None:
        """Replace the flag bits of an existing mapping."""
        pte_pa = self._pte_pa(va)
        if pte_pa is None:
            raise MemoryError_(f"protect of unmapped address {va:#x}")
        pte = self.physmem.read_u32(pte_pa)
        if not pte & PTE_PRESENT:
            raise MemoryError_(f"protect of non-present address {va:#x}")
        self.physmem.write_u32(
            pte_pa, make_pte(pte_frame(pte), (flags | PTE_PRESENT) & _FLAGS_MASK)
        )

    def clear_pde(self, dir_idx: int) -> None:
        """Drop one directory entry and its whole 4 MiB leaf table.

        Used by shadow paging to invalidate a subtree after the guest
        rewrites a page-directory entry.
        """
        if not 0 <= dir_idx < ENTRIES_PER_TABLE:
            raise MemoryError_(f"directory index {dir_idx} out of range")
        pde_pa = self.root_pa + dir_idx * 4
        pde = self.physmem.read_u32(pde_pa)
        if not pde & PTE_PRESENT:
            return
        table_pfn = pte_frame(pde)
        table_pa = table_pfn << PAGE_SHIFT
        for tbl_idx in range(ENTRIES_PER_TABLE):
            if self.physmem.read_u32(table_pa + tbl_idx * 4) & PTE_PRESENT:
                self.mapped_pages -= 1
        self.physmem.write_u32(pde_pa, 0)
        if table_pfn in self._table_frames:
            self._table_frames.remove(table_pfn)
            self.allocator.free(table_pfn)

    def lookup(self, va: int) -> Optional[int]:
        """Return the PTE for ``va`` (no side effects), or None."""
        pte_pa = self._pte_pa(va)
        if pte_pa is None:
            return None
        pte = self.physmem.read_u32(pte_pa)
        return pte if pte & PTE_PRESENT else None

    def mappings(self) -> Iterator[Tuple[int, int]]:
        """Yield (va, pte) for every present leaf mapping."""
        for dir_idx in range(ENTRIES_PER_TABLE):
            pde = self.physmem.read_u32(self.root_pa + dir_idx * 4)
            if not pde & PTE_PRESENT:
                continue
            table_pa = pte_frame(pde) << PAGE_SHIFT
            for tbl_idx in range(ENTRIES_PER_TABLE):
                pte = self.physmem.read_u32(table_pa + tbl_idx * 4)
                if pte & PTE_PRESENT:
                    yield ((dir_idx << 22) | (tbl_idx << 12), pte)

    def destroy(self) -> None:
        """Free every page-table page this space allocated."""
        for pfn in self._table_frames:
            self.allocator.free(pfn)
        self._table_frames = []
        self.mapped_pages = 0

    def _pte_pa(self, va: int) -> Optional[int]:
        dir_idx, tbl_idx, _ = split_vaddr(va)
        pde = self.physmem.read_u32(self.root_pa + dir_idx * 4)
        if not pde & PTE_PRESENT:
            return None
        return (pte_frame(pde) << PAGE_SHIFT) + tbl_idx * 4
