"""The platform cycle-cost model.

Every timing result in the instruction-accurate engine is a sum of these
constants. Magnitudes follow published measurements (Adams & Agesen
ASPLOS'06 for world-switch costs on early VT-x; Bhargava et al. ASPLOS'08
for 2-D page walks); the *ratios* are what the experiments depend on, and
E9 sweeps the most influential one (``vmexit_cycles``) to show the
conclusions are stable across two orders of magnitude.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the CPU, MMU, and VMM."""

    #: Base cost of one executed instruction.
    instr_cycles: int = 1
    #: Extra cost of integer multiply.
    mul_extra_cycles: int = 2
    #: Extra cost of integer divide.
    div_extra_cycles: int = 19
    #: One physical memory reference (page-table walk step, emulated DMA).
    mem_ref_cycles: int = 30
    #: TLB lookup that hits (charged on every load/store/fetch).
    tlb_hit_cycles: int = 0
    #: Delivering a trap/interrupt to the guest kernel (mode switch,
    #: pipeline flush) -- *not* a world switch.
    trap_cycles: int = 80
    #: Returning from a trap (IRET).
    iret_cycles: int = 60
    #: Full world switch: guest -> VMM exit plus the later VMM -> guest
    #: entry. This is the headline hardware parameter; ~1000-4000 cycles
    #: on 2005-2015 hardware.
    vmexit_cycles: int = 1200
    #: A paravirtual hypercall (VMCALL) -- still a world switch but with
    #: no decode/emulation work; charged instead of vmexit_cycles.
    hypercall_cycles: int = 900
    #: VMM software work to decode and emulate one privileged instruction
    #: after an exit.
    emulate_cycles: int = 150
    #: Binary translation: one-time translation cost per guest instruction.
    bt_translate_cycles: int = 60
    #: Binary translation: in-place callout for a sensitive instruction
    #: (no world switch -- the translated code calls VMM logic directly).
    bt_callout_cycles: int = 40
    #: Per-block dispatch cost when the next translated block is *not*
    #: chained (hash lookup in the translation cache).
    bt_dispatch_cycles: int = 25
    #: Trap handling under binary translation: the monitor is resident
    #: (no hardware world switch), so intercepting a guest trap costs a
    #: software reflection, far below vmexit_cycles (Adams & Agesen).
    bt_reflect_cycles: int = 250
    #: Port I/O access to a device register (charged on IN/OUT).
    io_port_cycles: int = 120
    #: VMM cost to handle one shadow-page-table fill (tracing fault).
    shadow_fill_cycles: int = 400
    #: VMM cost to emulate one write to a write-protected guest page
    #: table under shadow paging.
    shadow_ptwrite_cycles: int = 500
    #: One G-stage page-table entry reference during a hardware
    #: two-stage walk (H-mode). Defaults to the ordinary memory
    #: reference cost; ablations model a dedicated nested-walk cache by
    #: lowering it independently of ``mem_ref_cycles``.
    gstage_ref_cycles: int = 30
    #: Extra hardware cost of delivering a *delegated* trap directly in
    #: the guest (H-mode, no VMM involvement). Zero by default so the
    #: guest-visible cycle stream matches the architected trap cost;
    #: crossover ablations can charge a premium here.
    hmode_deleg_extra_cycles: int = 0

    @property
    def tlb_miss_cycles(self) -> int:
        """Charge for a translate that misses: hit probe + 2-level walk.

        Kept as a derived property (not a field) so ablation overrides
        of ``tlb_hit_cycles``/``mem_ref_cycles`` stay consistent.
        """
        return self.tlb_hit_cycles + 2 * self.mem_ref_cycles

    def with_(self, **overrides) -> "CostModel":
        """Return a copy with some fields replaced (ablation helper)."""
        return replace(self, **overrides)

    def validate(self) -> None:
        """Raise ConfigError if any cost is negative."""
        from repro.util.errors import ConfigError

        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cost {name} must be >= 0, got {value}")
