"""Live migration (experiment E6).

Two complementary implementations:

* :mod:`repro.migration.model` -- discrete-event models of pre-copy,
  post-copy, and stop-and-copy over a shared
  :class:`~repro.sim.link.NetworkLink`, with a two-class (hot/cold)
  writable-working-set dirty model. Generates the downtime/total-time
  curves versus dirty rate.
* :mod:`repro.migration.live` -- a *functional* live migrator for real
  instruction-engine VMs: iterative pre-copy rounds with true dirty
  logging (shadow or EPT write protection plus the VMM write hooks),
  final stop-and-copy of the residual set and vCPU/device state, and
  resume on the destination hypervisor. The migrated guest keeps
  running and exits with the correct result -- memory-identity is
  testable, not assumed. Transfers retry under a capped exponential
  backoff and resume from the dirty bitmap when a link drops
  (experiment E10); see :mod:`repro.faults`.
"""

from repro.migration.model import (
    MigrationConfig,
    MigrationResult,
    PreCopyStopPolicy,
    simulate_precopy,
    simulate_postcopy,
    simulate_stop_and_copy,
    unique_pages_dirtied,
)
from repro.migration.live import LiveMigrator, LiveMigrationResult
from repro.migration.postcopy import PostCopyMigrator, PostCopyResult

__all__ = [
    "PostCopyMigrator",
    "PostCopyResult",
    "MigrationConfig",
    "MigrationResult",
    "PreCopyStopPolicy",
    "simulate_precopy",
    "simulate_postcopy",
    "simulate_stop_and_copy",
    "unique_pages_dirtied",
    "LiveMigrator",
    "LiveMigrationResult",
]
