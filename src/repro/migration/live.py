"""Functional live migration of instruction-engine VMs.

This is real pre-copy over real state: dirty logging uses the shadow /
EPT write-protection machinery (CPU stores) plus the guest-memory write
hook (VMM-mediated writes: PT updates, hypercall batches, device DMA),
rounds interleave with actual guest execution, and the destination VM
resumes from copied vCPU + device state. Transfer *timing* is modeled
(cycles per byte); transfer *content* is exact.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.modes import MMUVirtMode
from repro.core.nested import NestedMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import GuestConfig, VirtualMachine
from repro.util.errors import MigrationError
from repro.util.units import PAGE_SIZE

#: Serialized vCPU + device state, charged to downtime.
CPU_STATE_BYTES = 4096


@dataclass
class LiveMigrationResult:
    """Outcome of one functional migration."""

    dest_vm: VirtualMachine
    rounds: int
    pages_copied: int
    final_round_pages: int
    downtime_cycles: int
    total_transfer_cycles: int
    guest_instructions_during: int
    round_sizes: List[int] = field(default_factory=list)
    source_outcome: Optional[RunOutcome] = None


class LiveMigrator:
    """Pre-copy migrator between two hypervisors."""

    def __init__(
        self,
        source: Hypervisor,
        destination: Hypervisor,
        bytes_per_cycle: float = 1.0,
    ):
        if bytes_per_cycle <= 0:
            raise MigrationError("bytes_per_cycle must be positive")
        self.source = source
        self.destination = destination
        self.bytes_per_cycle = bytes_per_cycle

    def migrate(
        self,
        vm: VirtualMachine,
        dest_name: Optional[str] = None,
        quantum_instructions: int = 20000,
        max_rounds: int = 12,
        threshold_pages: int = 8,
    ) -> LiveMigrationResult:
        """Migrate ``vm``; returns the (paused) destination VM.

        The source VM keeps executing between copy rounds, exactly as in
        real pre-copy; call ``destination.run(result.dest_vm)`` to
        continue the guest on the target host.
        """
        src = self.source
        vcpu = vm.vcpus[0]
        mmu = vcpu.cpu.mmu
        config = vm.config

        dest_config = GuestConfig(
            name=dest_name or f"{vm.name}-dst",
            memory_bytes=config.memory_bytes,
            virt_mode=config.virt_mode,
            mmu_mode=config.mmu_mode,
            tlb_entries=config.tlb_entries,
            prealloc=True,
            with_virtio=config.with_virtio,
            with_emulated_io=config.with_emulated_io,
        )
        dst_vm = self.destination.create_vm(dest_config)

        dirty: Set[int] = set()
        src.dirty_handlers[vm.name] = lambda _vm, gfn: dirty.add(gfn)
        old_hook = vm.guest_mem.write_hook
        vm.guest_mem.write_hook = dirty.add

        def protect(gfns):
            for gfn in gfns:
                if vm.guest_mem.is_mapped(gfn):
                    mmu.write_protect_gfn(gfn)
            mmu.flush()

        all_gfns = sorted(vm.guest_mem.map)
        protect(all_gfns)

        transfer_cycles = 0
        pages_copied = 0
        round_sizes: List[int] = []
        instructions_before = vcpu.cpu.instret
        source_outcome = None

        # Round 0: full copy while logging.
        for gfn in all_gfns:
            dst_vm.guest_mem.write_gfn(gfn, vm.guest_mem.read_gfn(gfn))
        transfer_cycles += self._cycles(len(all_gfns) * PAGE_SIZE)
        pages_copied += len(all_gfns)
        round_sizes.append(len(all_gfns))
        rounds = 1

        while rounds < max_rounds:
            dirty.clear()
            source_outcome = src.run(
                vm, max_guest_instructions=quantum_instructions
            )
            if source_outcome in (RunOutcome.SHUTDOWN, RunOutcome.HALTED):
                break  # guest finished/idle: nothing more will dirty
            if len(dirty) <= threshold_pages:
                break
            batch = sorted(g for g in dirty if vm.guest_mem.is_mapped(g))
            for gfn in batch:
                dst_vm.guest_mem.write_gfn(gfn, vm.guest_mem.read_gfn(gfn))
            transfer_cycles += self._cycles(len(batch) * PAGE_SIZE)
            pages_copied += len(batch)
            round_sizes.append(len(batch))
            protect(batch)
            rounds += 1

        # Stop-and-copy the residue plus machine state: the downtime.
        final_batch = sorted(g for g in dirty if vm.guest_mem.is_mapped(g))
        for gfn in final_batch:
            dst_vm.guest_mem.write_gfn(gfn, vm.guest_mem.read_gfn(gfn))
        downtime = self._cycles(len(final_batch) * PAGE_SIZE + CPU_STATE_BYTES)
        transfer_cycles += downtime
        pages_copied += len(final_batch)
        round_sizes.append(len(final_batch))

        self._copy_vcpu(vm, dst_vm)
        self._copy_devices(vm, dst_vm)
        dst_vm.pending_virqs = set(vm.pending_virqs)
        dst_vm.ballooned_gfns = set(vm.ballooned_gfns)

        # Detach logging from the (now dead) source.
        src.dirty_handlers.pop(vm.name, None)
        vm.guest_mem.write_hook = old_hook

        return LiveMigrationResult(
            dest_vm=dst_vm,
            rounds=rounds,
            pages_copied=pages_copied,
            final_round_pages=len(final_batch),
            downtime_cycles=downtime,
            total_transfer_cycles=transfer_cycles,
            guest_instructions_during=vcpu.cpu.instret - instructions_before,
            round_sizes=round_sizes,
            source_outcome=source_outcome,
        )

    # -- internals ----------------------------------------------------------

    def _cycles(self, nbytes: int) -> int:
        return int(nbytes / self.bytes_per_cycle)

    def _copy_vcpu(self, src_vm: VirtualMachine, dst_vm: VirtualMachine) -> None:
        s, d = src_vm.vcpus[0], dst_vm.vcpus[0]
        d.cpu.regs = list(s.cpu.regs)
        d.cpu.pc = s.cpu.pc
        d.cpu.csr = list(s.cpu.csr)
        d.cpu.cycles = s.cpu.cycles
        d.cpu.instret = s.cpu.instret
        d.cpu.pending_irqs = set(s.cpu.pending_irqs)
        d.cpu.halted = s.cpu.halted
        d.vcsr = list(s.vcsr)
        d.halted = s.halted
        d.incorrectness_observed = s.incorrectness_observed

        # Rebuild translation structures on the destination from the
        # migrated guest root (shadows/EPT mappings are host-local).
        mmu = d.cpu.mmu
        if isinstance(mmu, ShadowMMU):
            root = d.vcsr[1] if src_vm.config.mmu_mode is MMUVirtMode.SHADOW else 0
            if src_vm.config.virt_mode.value == "hw_assist":
                root = d.cpu.csr[1]
            if root:
                mmu.switch_guest_root(root)
                mmu.set_view(kernel=not d.virtual_user)
        elif isinstance(mmu, NestedMMU):
            if d.cpu.csr[1]:
                mmu.set_root(d.cpu.csr[1])

    def _copy_devices(self, src_vm: VirtualMachine, dst_vm: VirtualMachine) -> None:
        # Console: preserve everything printed so far.
        dst_vm.devices["console"]._chars = list(src_vm.devices["console"]._chars)
        dst_vm.devices["console"].chars_written = src_vm.devices["console"].chars_written

        st, dt = src_vm.devices["timer"], dst_vm.devices["timer"]
        dt.period, dt.mode = st.period, st.mode
        dt.expirations = st.expirations
        dt.deadline = st.deadline  # cycles are migrated with the vCPU

        sp, dp = src_vm.devices["power"], dst_vm.devices["power"]
        dp.shutdown_requested, dp.code = sp.shutdown_requested, sp.code

        dst_vm.pic.pending = list(src_vm.pic.pending)

        if "block" in src_vm.devices and "block" in dst_vm.devices:
            sb, db = src_vm.devices["block"], dst_vm.devices["block"]
            db.data[:] = sb.data
            db._sector, db._count, db._dma = sb._sector, sb._count, sb._dma
            db.status = sb.status
        if "virtio_blk" in src_vm.devices and "virtio_blk" in dst_vm.devices:
            sb, db = src_vm.devices["virtio_blk"], dst_vm.devices["virtio_blk"]
            db.data[:] = sb.data
            for attr in ("desc_gpa", "avail_gpa", "used_gpa", "size",
                         "last_avail_idx"):
                setattr(db.queue, attr, getattr(sb.queue, attr))
        if "virtio_net" in src_vm.devices and "virtio_net" in dst_vm.devices:
            sn, dn = src_vm.devices["virtio_net"], dst_vm.devices["virtio_net"]
            for side in ("tx", "rx"):
                sq = getattr(sn, side).queue
                dq = getattr(dn, side).queue
                for attr in ("desc_gpa", "avail_gpa", "used_gpa", "size",
                             "last_avail_idx"):
                    setattr(dq, attr, getattr(sq, attr))
