"""Functional live migration of instruction-engine VMs.

This is real pre-copy over real state: dirty logging uses the shadow /
EPT write-protection machinery (CPU stores) plus the guest-memory write
hook (VMM-mediated writes: PT updates, hypercall batches, device DMA),
rounds interleave with actual guest execution, and the destination VM
resumes from copied vCPU + device state. Transfer *timing* is modeled
(cycles per byte); transfer *content* is exact.

Failure handling: every page batch streams through a pending queue, so
an injected link drop (``migration.xfer_drop``) leaves exactly the
undelivered suffix queued. The migrator retries under a capped
exponential backoff (:class:`~repro.faults.recovery.RetryPolicy`) and
resumes from that suffix plus whatever the dirty bitmap has since
accumulated -- never from scratch. Pages corrupted on the wire
(``migration.page_corrupt``) are caught by a CRC check against the
source page and resent. Only an exhausted retry budget escalates to
:class:`~repro.util.errors.MigrationError`, chained (``raise ... from``)
to the final :class:`~repro.util.errors.LinkError`.
"""

import zlib
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.modes import MMUVirtMode
from repro.core.nested import NestedMMU
from repro.cpu.mmu import HModeMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import GuestConfig, VirtualMachine
from repro.faults.recovery import RetryPolicy
from repro.util.errors import LinkError, MigrationError
from repro.util.units import PAGE_SIZE

#: Serialized vCPU + device state, charged to downtime.
CPU_STATE_BYTES = 4096


@dataclass
class LiveMigrationResult:
    """Outcome of one functional migration."""

    dest_vm: VirtualMachine
    rounds: int
    pages_copied: int
    final_round_pages: int
    downtime_cycles: int
    total_transfer_cycles: int
    guest_instructions_during: int
    round_sizes: List[int] = field(default_factory=list)
    source_outcome: Optional[RunOutcome] = None
    retries: int = 0
    backoff_cycles: int = 0
    corrupt_pages_detected: int = 0
    #: ``migrate.round_stall`` firings (source hiccups between rounds)
    #: and the cycles they burned.
    stalls: int = 0
    stall_cycles: int = 0


class LiveMigrator:
    """Pre-copy migrator between two hypervisors."""

    def __init__(
        self,
        source: Hypervisor,
        destination: Hypervisor,
        bytes_per_cycle: float = 1.0,
        injector=None,
        retry_policy: Optional[RetryPolicy] = None,
        metrics=None,
        tracer=None,
    ):
        if bytes_per_cycle <= 0:
            raise MigrationError("bytes_per_cycle must be positive")
        self.source = source
        self.destination = destination
        self.bytes_per_cycle = bytes_per_cycle
        self.injector = injector
        self.retry_policy = retry_policy or RetryPolicy()
        #: ``migration.*`` scope; defaults into the source hypervisor's
        #: registry so standalone migrations still publish somewhere.
        self.metrics = (metrics if metrics is not None
                        else source.registry.scope("migration"))
        self.tracer = tracer

    def _span(self, name: str, **attrs):
        """A tracer span when tracing is on, else a no-op context."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def migrate(
        self,
        vm: VirtualMachine,
        dest_name: Optional[str] = None,
        quantum_instructions: int = 20000,
        max_rounds: int = 12,
        threshold_pages: int = 8,
    ) -> LiveMigrationResult:
        """Migrate ``vm``; returns the (paused) destination VM.

        The source VM keeps executing between copy rounds, exactly as in
        real pre-copy; call ``destination.run(result.dest_vm)`` to
        continue the guest on the target host.
        """
        src = self.source
        vcpu = vm.vcpus[0]
        mmu = vcpu.cpu.mmu
        config = vm.config

        dest_config = GuestConfig(
            name=dest_name or f"{vm.name}-dst",
            memory_bytes=config.memory_bytes,
            virt_mode=config.virt_mode,
            mmu_mode=config.mmu_mode,
            tlb_entries=config.tlb_entries,
            prealloc=True,
            with_virtio=config.with_virtio,
            with_emulated_io=config.with_emulated_io,
        )
        dst_vm = self.destination.create_vm(dest_config)

        dirty: Set[int] = set()
        src.dirty_handlers[vm.name] = lambda _vm, gfn: dirty.add(gfn)
        old_hook = vm.guest_mem.write_hook
        vm.guest_mem.write_hook = dirty.add

        def protect(gfns):
            for gfn in gfns:
                if vm.guest_mem.is_mapped(gfn):
                    mmu.write_protect_gfn(gfn)
            mmu.flush()

        all_gfns = sorted(vm.guest_mem.map)
        protect(all_gfns)

        transfer_cycles = 0
        pages_copied = 0
        round_sizes: List[int] = []
        instructions_before = vcpu.cpu.instret
        source_outcome = None
        stats: Dict[str, int] = {
            "retries": 0, "backoff_cycles": 0, "corrupt_pages": 0,
            "stalls": 0, "stall_cycles": 0,
        }

        try:
            # Round 0: full copy while logging.
            with self._span("migration.round", vm=vm.name, round=0):
                sent = self._send_with_retry(vm, dst_vm, deque(all_gfns), stats)
            transfer_cycles += self._cycles(sent * PAGE_SIZE)
            pages_copied += sent
            round_sizes.append(sent)
            rounds = 1

            while rounds < max_rounds:
                dirty.clear()
                source_outcome = src.run(
                    vm, max_guest_instructions=quantum_instructions
                )
                if source_outcome in (RunOutcome.SHUTDOWN, RunOutcome.HALTED):
                    break  # guest finished/idle: nothing more will dirty
                if len(dirty) <= threshold_pages:
                    break
                if self.injector is not None and self.injector.fires(
                    "migrate.round_stall"
                ):
                    # Source hiccup: the round stalls for one backoff
                    # quantum; time burns, the guest keeps dirtying.
                    stall = self.retry_policy.backoff_cycles(1)
                    stats["stalls"] += 1
                    stats["stall_cycles"] += stall
                    transfer_cycles += stall
                batch = sorted(g for g in dirty if vm.guest_mem.is_mapped(g))
                with self._span("migration.round", vm=vm.name, round=rounds):
                    sent = self._send_with_retry(vm, dst_vm, deque(batch),
                                                 stats)
                transfer_cycles += self._cycles(sent * PAGE_SIZE)
                pages_copied += sent
                round_sizes.append(sent)
                protect(batch)
                rounds += 1

            # Stop-and-copy the residue plus machine state: the downtime.
            final_batch = sorted(g for g in dirty if vm.guest_mem.is_mapped(g))
            with self._span("migration.stop_and_copy", vm=vm.name):
                sent = self._send_with_retry(vm, dst_vm, deque(final_batch),
                                             stats)
            downtime = self._cycles(sent * PAGE_SIZE + CPU_STATE_BYTES)
            transfer_cycles += downtime
            pages_copied += sent
            round_sizes.append(sent)

            self._copy_vcpu(vm, dst_vm)
            self._copy_devices(vm, dst_vm)
            dst_vm.pending_virqs = set(vm.pending_virqs)
            dst_vm.ballooned_gfns = set(vm.ballooned_gfns)
        finally:
            # Detach logging from the source -- on success (the source
            # is now dead) and on an abandoned migration alike, so the
            # still-running source never leaks a dirty hook.
            src.dirty_handlers.pop(vm.name, None)
            vm.guest_mem.write_hook = old_hook

        m = self.metrics
        m.counter("migrations").inc()
        m.counter("rounds").inc(rounds)
        m.counter("pages_copied").inc(pages_copied)
        m.counter("retries").inc(stats["retries"])
        m.counter("backoff_cycles").inc(stats["backoff_cycles"])
        m.counter("corrupt_pages").inc(stats["corrupt_pages"])
        if stats["stalls"]:
            m.counter("stalls").inc(stats["stalls"])
        m.observe("downtime_cycles", downtime)

        return LiveMigrationResult(
            dest_vm=dst_vm,
            rounds=rounds,
            pages_copied=pages_copied,
            final_round_pages=len(final_batch),
            downtime_cycles=downtime,
            total_transfer_cycles=transfer_cycles,
            guest_instructions_during=vcpu.cpu.instret - instructions_before,
            round_sizes=round_sizes,
            source_outcome=source_outcome,
            retries=stats["retries"],
            backoff_cycles=stats["backoff_cycles"],
            corrupt_pages_detected=stats["corrupt_pages"],
            stalls=stats["stalls"],
            stall_cycles=stats["stall_cycles"],
        )

    # -- internals ----------------------------------------------------------

    def _cycles(self, nbytes: int) -> int:
        return int(nbytes / self.bytes_per_cycle)

    def _send_with_retry(
        self,
        vm: VirtualMachine,
        dst_vm: VirtualMachine,
        pending: Deque[int],
        stats: Dict[str, int],
    ) -> int:
        """Stream ``pending`` to the destination, retrying on link drops.

        ``pending`` is consumed in place, so each retry resumes from the
        undelivered suffix (plus corrupt-page resends) -- pages already
        on the destination are never re-sent. Returns the number of
        pages that crossed the wire (resends included). Raises
        :class:`MigrationError` chained to the last :class:`LinkError`
        once :class:`RetryPolicy.max_retries` is exhausted.
        """
        sent_box = [0]  # survives a LinkError mid-batch: those pages landed
        attempt = 0
        while True:
            try:
                self._send_batch(vm, dst_vm, pending, stats, sent_box)
                return sent_box[0]
            except LinkError as err:
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    raise MigrationError(
                        f"migration of {vm.name} abandoned: transfer "
                        f"dropped {attempt} times with {len(pending)} "
                        f"pages still pending"
                    ) from err
                stats["retries"] += 1
                stats["backoff_cycles"] += self.retry_policy.backoff_cycles(
                    attempt
                )

    def _send_batch(
        self,
        vm: VirtualMachine,
        dst_vm: VirtualMachine,
        pending: Deque[int],
        stats: Dict[str, int],
        sent_box: List[int],
    ) -> None:
        """One attempt at draining ``pending``; raises LinkError on drop."""
        while pending:
            if self.injector is not None and (
                self.injector.fires("migration.xfer_drop")
            ):
                raise LinkError(
                    f"migration stream for {vm.name} dropped with "
                    f"{len(pending)} pages pending"
                )
            gfn = pending[0]
            intact = self._send_page(vm, dst_vm, gfn)
            pending.popleft()
            sent_box[0] += 1
            if not intact:
                # The per-page CRC caught wire corruption: queue a
                # resend. The corrupt copy never reaches guest-visible
                # state uncorrected.
                stats["corrupt_pages"] += 1
                pending.append(gfn)

    def _send_page(
        self, vm: VirtualMachine, dst_vm: VirtualMachine, gfn: int
    ) -> bool:
        """Copy one page; returns False when it was corrupted in flight."""
        data = vm.guest_mem.read_gfn(gfn)
        wire = data
        if self.injector is not None and (
            self.injector.fires("migration.page_corrupt")
        ):
            pos = int(
                self.injector.uniform("migration.page_corrupt") * len(data)
            ) % len(data)
            corrupted = bytearray(data)
            corrupted[pos] ^= 0xFF
            wire = bytes(corrupted)
        dst_vm.guest_mem.write_gfn(gfn, wire)
        return zlib.crc32(wire) == zlib.crc32(data)

    def _copy_vcpu(self, src_vm: VirtualMachine, dst_vm: VirtualMachine) -> None:
        s, d = src_vm.vcpus[0], dst_vm.vcpus[0]
        d.cpu.regs = list(s.cpu.regs)
        d.cpu.pc = s.cpu.pc
        d.cpu.csr = list(s.cpu.csr)
        d.cpu.cycles = s.cpu.cycles
        d.cpu.instret = s.cpu.instret
        d.cpu.pending_irqs = set(s.cpu.pending_irqs)
        d.cpu.halted = s.cpu.halted
        d.vcsr = list(s.vcsr)
        d.halted = s.halted
        d.incorrectness_observed = s.incorrectness_observed

        # Rebuild translation structures on the destination from the
        # migrated guest root (shadows/EPT mappings are host-local).
        mmu = d.cpu.mmu
        if isinstance(mmu, ShadowMMU):
            root = d.vcsr[1] if src_vm.config.mmu_mode is MMUVirtMode.SHADOW else 0
            if src_vm.config.virt_mode.value == "hw_assist":
                root = d.cpu.csr[1]
            if root:
                mmu.switch_guest_root(root)
                mmu.set_view(kernel=not d.virtual_user)
        elif isinstance(mmu, (NestedMMU, HModeMMU)):
            if d.cpu.csr[1]:
                mmu.set_root(d.cpu.csr[1])

    def _copy_devices(self, src_vm: VirtualMachine, dst_vm: VirtualMachine) -> None:
        # Console: preserve everything printed so far.
        dst_vm.devices["console"]._chars = list(src_vm.devices["console"]._chars)
        dst_vm.devices["console"].chars_written = src_vm.devices["console"].chars_written

        st, dt = src_vm.devices["timer"], dst_vm.devices["timer"]
        dt.period, dt.mode = st.period, st.mode
        dt.expirations = st.expirations
        dt.deadline = st.deadline  # cycles are migrated with the vCPU

        sp, dp = src_vm.devices["power"], dst_vm.devices["power"]
        dp.shutdown_requested, dp.code = sp.shutdown_requested, sp.code

        dst_vm.pic.pending = list(src_vm.pic.pending)

        if "block" in src_vm.devices and "block" in dst_vm.devices:
            sb, db = src_vm.devices["block"], dst_vm.devices["block"]
            db.data[:] = sb.data
            db._sector, db._count, db._dma = sb._sector, sb._count, sb._dma
            db.status = sb.status
        if "virtio_blk" in src_vm.devices and "virtio_blk" in dst_vm.devices:
            sb, db = src_vm.devices["virtio_blk"], dst_vm.devices["virtio_blk"]
            db.data[:] = sb.data
            for attr in ("desc_gpa", "avail_gpa", "used_gpa", "size",
                         "last_avail_idx"):
                setattr(db.queue, attr, getattr(sb.queue, attr))
        if "virtio_net" in src_vm.devices and "virtio_net" in dst_vm.devices:
            sn, dn = src_vm.devices["virtio_net"], dst_vm.devices["virtio_net"]
            for side in ("tx", "rx"):
                sq = getattr(sn, side).queue
                dq = getattr(dn, side).queue
                for attr in ("desc_gpa", "avail_gpa", "used_gpa", "size",
                             "last_avail_idx"):
                    setattr(dq, attr, getattr(sq, attr))
