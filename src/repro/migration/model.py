"""Discrete-event migration models (the E6 curve generator).

Dirty-page behaviour uses the standard two-class writable-working-set
model: a *hot* set of ``hot_fraction * pages`` pages receives
``hot_write_fraction`` of all page writes; the rest spread over the
cold pages. The number of **unique** pages dirtied in an interval t
with class write rate w over n pages is ``n * (1 - exp(-w t / n))`` --
re-dirtying a hot page is free, which is exactly why pre-copy converges
for moderate dirty rates and blows up when the dirty rate approaches
the link's page rate (Clark et al., NSDI'05).

Pre-copy additionally models transport faults when given a
:class:`~repro.faults.injector.FaultInjector`: ``migrate.link_drop``
(stream dies mid-round; capped-exponential backoff and resend, giving
up once the :class:`~repro.faults.recovery.RetryPolicy` budget is
spent) and ``migrate.round_stall`` (a round stalls; the stall dirties
pages like any elapsed time). Without an injector the model is
bit-identical to its fault-free form.
"""

import enum
import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.faults.recovery import RetryPolicy
from repro.sim.kernel import SEC, Simulator, Timeout
from repro.sim.link import NetworkLink
from repro.util.errors import MigrationError
from repro.util.units import KIB, PAGE_SIZE


class PreCopyStopPolicy(enum.Enum):
    """When pre-copy gives up iterating and takes the downtime hit."""

    THRESHOLD = "threshold"  # residual dirty set below a page threshold
    MAX_ROUNDS = "max_rounds"  # fixed round budget
    DIMINISHING = "diminishing"  # stop when a round shrinks < 10 %


@dataclass
class MigrationConfig:
    """Workload + platform parameters for one migration."""

    vm_pages: int = 131072  # 512 MiB
    dirty_rate_pps: float = 5000.0  # page writes per second
    hot_fraction: float = 0.1  # fraction of pages in the hot set
    hot_write_fraction: float = 0.9  # fraction of writes to the hot set
    cpu_state_bytes: int = 64 * KIB
    max_rounds: int = 30
    threshold_pages: int = 64
    stop_policy: PreCopyStopPolicy = PreCopyStopPolicy.THRESHOLD
    #: Post-copy: guest page-touch rate while degraded (first touches).
    touch_rate_pps: float = 20000.0

    def validate(self) -> None:
        if self.vm_pages <= 0:
            raise MigrationError("vm_pages must be positive")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise MigrationError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_write_fraction <= 1.0:
            raise MigrationError("hot_write_fraction must be in [0, 1]")
        if self.dirty_rate_pps < 0:
            raise MigrationError("dirty rate must be non-negative")


@dataclass
class MigrationResult:
    """What E6 plots."""

    technique: str
    total_time_us: int
    downtime_us: int
    pages_sent: int
    rounds: int
    #: Post-copy: remote faults taken, and how long the guest ran degraded.
    remote_faults: int = 0
    degraded_time_us: int = 0
    converged: bool = True
    round_sizes: List[int] = field(default_factory=list)
    #: Fault-injection outcomes (``migrate.link_drop`` retries under the
    #: RetryPolicy, ``migrate.round_stall`` stalls); all zero/False on a
    #: fault-free run.
    retries: int = 0
    backoff_us: int = 0
    stalls: int = 0
    stall_us: int = 0
    #: True when the retry budget was exhausted and the migration was
    #: abandoned with the guest still on the source.
    gave_up: bool = False


def unique_pages_dirtied(cfg: MigrationConfig, interval_us: int) -> int:
    """Unique pages dirtied in an interval under the hot/cold model."""
    if interval_us <= 0 or cfg.dirty_rate_pps == 0:
        return 0
    t = interval_us / SEC
    hot_pages = max(1, int(cfg.vm_pages * cfg.hot_fraction))
    cold_pages = max(1, cfg.vm_pages - hot_pages)
    hot_rate = cfg.dirty_rate_pps * cfg.hot_write_fraction
    cold_rate = cfg.dirty_rate_pps * (1.0 - cfg.hot_write_fraction)
    unique_hot = hot_pages * (1.0 - math.exp(-hot_rate * t / hot_pages))
    unique_cold = cold_pages * (1.0 - math.exp(-cold_rate * t / cold_pages))
    return min(cfg.vm_pages, int(round(unique_hot + unique_cold)))


def _run(sim: Simulator, gen: Generator) -> MigrationResult:
    proc = sim.spawn(gen, name="migration")
    return sim.run_until_process(proc)


def _record(metrics, result: MigrationResult) -> None:
    """Publish one model run under ``<scope>.model.<technique>.*``."""
    if metrics is None:
        return
    scope = metrics.scope(f"model.{result.technique}")
    scope.counter("runs").inc()
    scope.counter("pages_sent").inc(result.pages_sent)
    scope.counter("rounds").inc(result.rounds)
    scope.observe("total_time_us", result.total_time_us)
    scope.observe("downtime_us", result.downtime_us)
    # Fault-path counters register only when faults actually fired, so
    # fault-free manifests keep their pre-fault schema.
    if result.retries:
        scope.counter("retries").inc(result.retries)
    if result.stalls:
        scope.counter("stalls").inc(result.stalls)
    if result.gave_up:
        scope.counter("gave_up").inc()


class _GiveUp(Exception):
    """Internal: the retry budget for one transfer is exhausted."""


def simulate_precopy(
    cfg: MigrationConfig,
    link: NetworkLink,
    sim: Optional[Simulator] = None,
    metrics=None,
    injector=None,
    retry_policy: Optional[RetryPolicy] = None,
) -> MigrationResult:
    """Iterative pre-copy: rounds of (transfer, re-dirty) then stop-copy.

    Fault sites (evaluated only when an ``injector`` is supplied, so
    fault-free runs are bit-identical to the pre-fault model):

    * ``migrate.link_drop`` -- one opportunity per transfer attempt;
      a firing burns a deterministic fraction of the attempt's
      serialization time, then the migrator backs off per
      ``retry_policy`` and resends the round. Exhausting the budget
      abandons the migration (``gave_up=True``, guest stays on the
      source, no downtime is charged).
    * ``migrate.round_stall`` -- one opportunity per pre-copy round;
      a firing stalls the round (source hiccup), and the stall time
      dirties pages like any other elapsed time.
    """
    cfg.validate()
    if sim is None:
        sim = link.sim
    rp = retry_policy if retry_policy is not None else RetryPolicy()
    stats = {"retries": 0, "backoff_us": 0, "stalls": 0, "stall_us": 0}

    def attempt_transfer(nbytes):
        """Transfer with drop-retry; returns (result, wasted_us)."""
        attempt = 0
        wasted = 0
        while True:
            if injector is not None and injector.fires("migrate.link_drop"):
                burn = int(
                    link.transmission_time(nbytes)
                    * (0.25 + 0.5 * injector.uniform("migrate.link_drop"))
                )
                if burn > 0:
                    yield Timeout(burn)
                wasted += burn
                attempt += 1
                if attempt > rp.max_retries:
                    raise _GiveUp()
                stats["retries"] += 1
                backoff = rp.backoff_cycles(attempt)
                stats["backoff_us"] += backoff
                wasted += backoff
                if backoff > 0:
                    yield Timeout(backoff)
                continue
            result = yield from link.transfer(nbytes)
            return result, wasted

    def process():
        start = sim.now
        to_send = cfg.vm_pages
        pages_sent = 0
        rounds = 0
        round_sizes = []
        converged = True

        def abandoned():
            return MigrationResult(
                technique="precopy",
                total_time_us=sim.now - start,
                downtime_us=0,  # the guest never paused: it never left
                pages_sent=pages_sent,
                rounds=rounds,
                converged=False,
                round_sizes=round_sizes,
                retries=stats["retries"],
                backoff_us=stats["backoff_us"],
                stalls=stats["stalls"],
                stall_us=stats["stall_us"],
                gave_up=True,
            )

        while True:
            stalled = 0
            if injector is not None and injector.fires("migrate.round_stall"):
                stalled = int(
                    link.transmission_time(to_send * PAGE_SIZE)
                    * (0.25 + 0.5 * injector.uniform("migrate.round_stall"))
                )
                if stalled > 0:
                    yield Timeout(stalled)
                stats["stalls"] += 1
                stats["stall_us"] += stalled
            try:
                result, wasted = yield from attempt_transfer(
                    to_send * PAGE_SIZE
                )
            except _GiveUp:
                return abandoned()
            pages_sent += to_send
            rounds += 1
            round_sizes.append(to_send)
            dirtied = unique_pages_dirtied(
                cfg, result.duration + wasted + stalled
            )
            stop = False
            if cfg.stop_policy is PreCopyStopPolicy.THRESHOLD:
                stop = dirtied <= cfg.threshold_pages
            elif cfg.stop_policy is PreCopyStopPolicy.DIMINISHING:
                stop = dirtied <= cfg.threshold_pages or dirtied > 0.9 * to_send
            if rounds >= cfg.max_rounds:
                stop = True
                converged = dirtied <= cfg.threshold_pages
            if cfg.stop_policy is PreCopyStopPolicy.DIMINISHING and dirtied > 0.9 * to_send and rounds > 1:
                converged = dirtied <= cfg.threshold_pages
            if stop:
                # Stop the VM, ship the residue plus the CPU state. A
                # drop here resumes the guest on the source during the
                # backoff, so only the successful attempt is downtime.
                try:
                    down, _ = yield from attempt_transfer(
                        dirtied * PAGE_SIZE + cfg.cpu_state_bytes
                    )
                except _GiveUp:
                    return abandoned()
                pages_sent += dirtied
                round_sizes.append(dirtied)
                return MigrationResult(
                    technique="precopy",
                    total_time_us=sim.now - start,
                    downtime_us=down.duration,
                    pages_sent=pages_sent,
                    rounds=rounds,
                    converged=converged,
                    round_sizes=round_sizes,
                    retries=stats["retries"],
                    backoff_us=stats["backoff_us"],
                    stalls=stats["stalls"],
                    stall_us=stats["stall_us"],
                )
            to_send = dirtied

    result = _run(sim, process())
    _record(metrics, result)
    return result


def simulate_postcopy(
    cfg: MigrationConfig,
    link: NetworkLink,
    sim: Optional[Simulator] = None,
    metrics=None,
) -> MigrationResult:
    """Post-copy: ship CPU state, resume remotely, push + demand-fetch.

    Degradation model: pages are background-pushed in (effectively)
    random order over the push window T. A first guest touch of a page
    not yet pushed takes a remote fault (round trip + one page). The
    expected number of such faults integrates first-touch arrivals
    against the push progress; hot pages (touched early and often)
    dominate. Faults are served with link priority, extending the push
    window accordingly.
    """
    cfg.validate()
    if sim is None:
        sim = link.sim

    def process():
        start = sim.now
        # Downtime: only the CPU/device state ships while paused.
        down = yield from link.transfer(cfg.cpu_state_bytes)

        push_time = link.transmission_time(cfg.vm_pages * PAGE_SIZE)
        # Expected remote faults: E = sum over pages of
        # P(first touch before push arrival). With touch rate lambda_p
        # per page and uniform push arrival in [0, T]:
        #   P = (1 - (1 - exp(-l T)) / (l T))   per page.
        hot_pages = max(1, int(cfg.vm_pages * cfg.hot_fraction))
        cold_pages = max(1, cfg.vm_pages - hot_pages)
        t_sec = push_time / SEC
        faults = 0.0
        for pages, share in (
            (hot_pages, cfg.hot_write_fraction),
            (cold_pages, 1.0 - cfg.hot_write_fraction),
        ):
            lam = cfg.touch_rate_pps * share / pages  # per-page touch rate
            if lam <= 0 or t_sec <= 0:
                continue
            lt = lam * t_sec
            p_fault = 1.0 - (1.0 - math.exp(-lt)) / lt
            faults += pages * p_fault
        remote_faults = int(round(faults))

        # Fault service competes with the push stream: each remote fault
        # costs a round trip plus a page; faults extend the total window.
        fault_bytes = remote_faults * PAGE_SIZE
        fault_latency_us = remote_faults * 2 * link.latency
        result = yield from link.transfer(cfg.vm_pages * PAGE_SIZE + fault_bytes)
        degraded = result.duration + fault_latency_us
        return MigrationResult(
            technique="postcopy",
            total_time_us=sim.now - start + fault_latency_us,
            downtime_us=down.duration,
            pages_sent=cfg.vm_pages + remote_faults,
            rounds=1,
            remote_faults=remote_faults,
            degraded_time_us=degraded,
        )

    result = _run(sim, process())
    _record(metrics, result)
    return result


def simulate_stop_and_copy(
    cfg: MigrationConfig,
    link: NetworkLink,
    sim: Optional[Simulator] = None,
    metrics=None,
) -> MigrationResult:
    """The naive baseline: freeze, copy everything, resume."""
    cfg.validate()
    if sim is None:
        sim = link.sim

    def process():
        start = sim.now
        result = yield from link.transfer(
            cfg.vm_pages * PAGE_SIZE + cfg.cpu_state_bytes
        )
        return MigrationResult(
            technique="stop_and_copy",
            total_time_us=sim.now - start,
            downtime_us=result.duration,
            pages_sent=cfg.vm_pages,
            rounds=1,
        )

    result = _run(sim, process())
    _record(metrics, result)
    return result
