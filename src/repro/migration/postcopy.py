"""Functional post-copy migration (Hines & Gopalan, VEE'09).

The destination VM is created with **no** backing frames
(``prealloc=False``): the vCPU and device state move immediately (the
only downtime), the guest resumes on the destination, and every first
touch of a page raises an EPT violation that the migrator services by
fetching the page from the source ("demand fetch"). A background
"pusher" proactively transfers the remaining pages between execution
quanta so the degradation window is bounded.

Requires nested paging on the destination (the EPT violation is the
fetch trigger); that matches reality — production post-copy (userfaultd
/ KVM) relies on second-level translation faults.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.modes import MMUVirtMode, VirtMode
from repro.core.vm import GuestConfig, VirtualMachine
from repro.util.errors import MigrationError
from repro.util.units import PAGE_SIZE

from repro.migration.live import CPU_STATE_BYTES, LiveMigrator


@dataclass
class PostCopyResult:
    """Outcome of a functional post-copy migration."""

    dest_vm: VirtualMachine
    downtime_cycles: int
    remote_faults: int
    pushed_pages: int
    total_pages: int
    outcome: RunOutcome
    #: cycles of guest progress made while pages were still remote.
    degraded_cycles: int

    @property
    def fetch_fraction(self) -> float:
        if self.total_pages == 0:
            return 0.0
        return self.remote_faults / self.total_pages


class PostCopyMigrator:
    """Move a VM by resuming first and fetching memory on demand."""

    def __init__(
        self,
        source: Hypervisor,
        destination: Hypervisor,
        bytes_per_cycle: float = 1.0,
        fetch_latency_cycles: int = 3000,
        push_batch_pages: int = 64,
        push_quantum_instructions: int = 5000,
        metrics=None,
    ):
        if bytes_per_cycle <= 0:
            raise MigrationError("bytes_per_cycle must be positive")
        if push_batch_pages <= 0 or push_quantum_instructions <= 0:
            raise MigrationError("push parameters must be positive")
        self.source = source
        self.destination = destination
        self.bytes_per_cycle = bytes_per_cycle
        self.fetch_latency_cycles = fetch_latency_cycles
        self.push_batch_pages = push_batch_pages
        self.push_quantum = push_quantum_instructions
        #: ``migration.*`` scope shared with pre-copy; post-copy specific
        #: counters live one level down under ``migration.postcopy.*``.
        self.metrics = (metrics if metrics is not None
                        else source.registry.scope("migration"))

    def migrate_and_run(
        self,
        vm: VirtualMachine,
        dest_name: Optional[str] = None,
        max_guest_instructions: int = 50_000_000,
    ) -> PostCopyResult:
        """Switch execution to the destination and run to completion.

        Unlike pre-copy, post-copy cannot hand back a paused VM and
        walk away -- the destination needs the migrator alive to
        service remote faults -- so this call owns the whole run.
        """
        if vm.config.virt_mode is not VirtMode.HW_ASSIST:
            raise MigrationError(
                "functional post-copy requires HW_ASSIST on the source "
                "(vCPU state must be architectural)"
            )
        src_mem = vm.guest_mem
        dest_config = GuestConfig(
            name=dest_name or f"{vm.name}-dst",
            memory_bytes=vm.config.memory_bytes,
            virt_mode=VirtMode.HW_ASSIST,
            mmu_mode=MMUVirtMode.NESTED,
            prealloc=False,
            with_virtio=vm.config.with_virtio,
            with_emulated_io=vm.config.with_emulated_io,
        )
        dst_vm = self.destination.create_vm(dest_config)

        remaining: Set[int] = set(src_mem.map)
        total_pages = len(remaining)
        stats = {"faults": 0, "pushed": 0}

        def fetch(gfn: int) -> None:
            """Copy one page from source into fresh destination backing."""
            hfn = self.destination.allocator.alloc(zero=False)
            self.destination.physmem.write_frame(hfn, src_mem.read_gfn(gfn))
            dst_vm.guest_mem.map_page(gfn, hfn)
            remaining.discard(gfn)

        def on_ept_fault(fault_vm, gfn, _access) -> bool:
            if fault_vm is not dst_vm or gfn not in remaining:
                # Not ours (another VM, a ballooned page): decline and
                # let the rest of the chain -- host swap, demand zero
                # -- service it.
                return False
            fetch(gfn)
            stats["faults"] += 1
            # A remote fault stalls the vCPU for a network round trip.
            fault_vm.stats.vmm_cycles += (
                self.fetch_latency_cycles
                + int(PAGE_SIZE / self.bytes_per_cycle)
            )
            return True

        self.destination.register_ept_fault_handler(
            on_ept_fault, name="postcopy_fetch"
        )
        try:
            # Downtime: vCPU + device state only.
            borrowed = LiveMigrator(self.source, self.destination,
                                    self.bytes_per_cycle)
            borrowed._copy_vcpu(vm, dst_vm)
            borrowed._copy_devices(vm, dst_vm)
            dst_vm.pending_virqs = set(vm.pending_virqs)
            dst_vm.ballooned_gfns = set(vm.ballooned_gfns)
            downtime = int(CPU_STATE_BYTES / self.bytes_per_cycle)
            dst_vm.stats.vmm_cycles += downtime

            # Interleave execution with background pushing until either
            # the guest finishes or every page has arrived.
            degraded_start = self._vm_cycles(dst_vm)
            dst_cpu = dst_vm.vcpus[0].cpu
            outcome = RunOutcome.INSTR_LIMIT
            executed = 0
            while executed < max_guest_instructions:
                quantum = min(self.push_quantum,
                              max_guest_instructions - executed)
                retired_before = dst_cpu.instret
                outcome = self.destination.run(
                    dst_vm, max_guest_instructions=quantum
                )
                # Charge what actually retired; a guest halting
                # mid-quantum must not burn the whole slice of budget.
                executed += dst_cpu.instret - retired_before
                if outcome in (RunOutcome.SHUTDOWN, RunOutcome.HALTED,
                               RunOutcome.HUNG):
                    break
                if remaining:
                    batch = [remaining.pop() for _ in
                             range(min(self.push_batch_pages, len(remaining)))]
                    for gfn in batch:
                        remaining.add(gfn)  # fetch() discards
                        fetch(gfn)
                        stats["pushed"] += 1
                    dst_vm.stats.vmm_cycles += int(
                        len(batch) * PAGE_SIZE / self.bytes_per_cycle
                    )
            degraded = self._vm_cycles(dst_vm) - degraded_start

            # Finish the background push if the guest ended early.
            while remaining:
                gfn = next(iter(remaining))
                fetch(gfn)
                stats["pushed"] += 1
        finally:
            # Always retire the fetch handler: a destination run that
            # raises (triple fault, MigrationError) must not leak a
            # chain entry bound to a dead migrator.
            self.destination.unregister_ept_fault_handler(on_ept_fault)
        m = self.metrics
        m.counter("migrations").inc()
        pc = m.scope("postcopy")
        pc.counter("remote_faults").inc(stats["faults"])
        pc.counter("pushed_pages").inc(stats["pushed"])
        pc.counter("pages_total").inc(total_pages)
        pc.observe("downtime_cycles", downtime)
        return PostCopyResult(
            dest_vm=dst_vm,
            downtime_cycles=downtime,
            remote_faults=stats["faults"],
            pushed_pages=stats["pushed"],
            total_pages=total_pages,
            outcome=outcome,
            degraded_cycles=degraded,
        )

    @staticmethod
    def _vm_cycles(vm: VirtualMachine) -> int:
        return vm.vcpus[0].cpu.cycles + vm.stats.vmm_cycles
