"""Command-line interface: regenerate experiments and boot guests.

Usage::

    python -m repro list                      # what can run
    python -m repro run e1                    # one experiment table
    python -m repro run all                   # every table (E1-E10)
    python -m repro run e10 --quick           # resilience smoke run
    python -m repro boot --mode hw-nested --workload hello
"""

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.bench import (
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e6_faults,
    run_e6_functional,
    run_e7,
    run_e7_controller,
    run_e7_functional,
    run_e8,
    run_e8_scale,
    run_e9_bt,
    run_e9_exit_cost,
    run_e10,
    run_e10_cascade,
    run_e11,
)

EXPERIMENTS: Dict[str, Callable] = {
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e6f": run_e6_functional,
    "e6x": run_e6_faults,
    "e7": run_e7,
    "e7f": run_e7_functional,
    "e7c": run_e7_controller,
    "e8": run_e8,
    "e8s": run_e8_scale,
    "e9a": run_e9_exit_cost,
    "e9b": run_e9_bt,
    "e10": run_e10,
    "e10c": run_e10_cascade,
    "e11": run_e11,
}

#: Experiments accepting a ``quick`` kwarg (smaller, CI-friendly run).
QUICK_AWARE = {"e10", "e10c", "e7c", "e8s"}

#: Experiments accepting ``shards``/``jobs`` kwargs. For e8s the shard
#: count is part of the experiment identity (it partitions the RNG
#: streams); ``jobs`` never changes any experiment's output.
SHARD_AWARE = {"e6", "e8s", "e10c"}

#: Default fault-schedule rate for fuzz campaigns (see --no-faults).
DEFAULT_FUZZ_FAULT_RATE = 0.05

MODES = {
    "native": (None, None, False),
    "trap-emulate": ("trap_emulate", "shadow", False),
    "bin-transl": ("binary_translation", "shadow", False),
    "paravirt": ("paravirt", "shadow", True),
    "hw-shadow": ("hw_assist", "shadow", False),
    "hw-nested": ("hw_assist", "nested", False),
    "hw-hmode": ("hw_assist", "hmode", False),
}

WORKLOADS = [
    "hello", "cpu_bound", "memtouch", "syscall_storm", "pt_stress",
    "blk_write", "vblk_write", "net_send", "vnet_send",
]


def _cmd_list(_args) -> int:
    print("experiments:")
    for key, fn in EXPERIMENTS.items():
        doc = (fn.__module__.rsplit(".", 1)[-1]).replace("_", " ")
        print(f"  {key:4s} {doc}")
    print("\nboot modes:   " + " ".join(MODES))
    print("workloads:    " + " ".join(WORKLOADS))
    return 0


def _cmd_run(args) -> int:
    keys: List[str] = (
        list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        profiler = cProfile.Profile()
    for key in keys:
        fn = EXPERIMENTS.get(key)
        if fn is None:
            print(f"unknown experiment {key!r}; try: {' '.join(EXPERIMENTS)}",
                  file=sys.stderr)
            return 2
        kwargs = {}
        if getattr(args, "quick", False) and key in QUICK_AWARE:
            kwargs["quick"] = True
        if key in SHARD_AWARE:
            if getattr(args, "shards", None):
                kwargs["shards"] = args.shards
            if getattr(args, "jobs", None):
                kwargs["jobs"] = args.jobs
        if key == "e8s" and getattr(args, "fleet", None):
            kwargs["fleet_sizes"] = [args.fleet]
        if profiler is not None:
            profiler.enable()
        result = fn(**kwargs)
        if profiler is not None:
            profiler.disable()
        if getattr(args, "json", False):
            # Machine-readable: one metrics manifest per experiment.
            print(json.dumps(result.manifest(), indent=2))
            continue
        print(result.render())
        for extra in ("latency_table", "fleet_table"):
            if extra in result.raw:
                print()
                print(result.raw[extra].render())
        print()
    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print("--- cProfile (top 25 by cumulative time) ---", file=sys.stderr)
        stats.print_stats(25)
    return 0


def _cmd_perf(args) -> int:
    from repro.bench.host_throughput import run_host_throughput

    result = run_host_throughput(
        quick=args.quick,
        profile_top=25 if getattr(args, "profile", False) else 0,
    )
    result.write(args.out)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.render())
        print(f"\nwrote {args.out}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = result.check_baseline(baseline)
        if failures:
            for failure in failures:
                print(f"perf regression: {failure}", file=sys.stderr)
            print(result.baseline_table(baseline), file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline})", file=sys.stderr)
    return 0


def _cmd_shardbench(args) -> int:
    from repro.bench.shard_scaling import run_shard_scaling

    result = run_shard_scaling(quick=args.quick)
    result.write(args.out)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.render())
        print(f"\nwrote {args.out}")
    if not result.parity_ok:
        print("shardbench: manifest parity broken across --jobs values",
              file=sys.stderr)
        return 1
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = result.check_baseline(baseline)
        if failures:
            for failure in failures:
                print(f"shard scaling regression: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline})", file=sys.stderr)
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import load_corpus, replay_entry, run_campaign
    from repro.fuzz.bugs import known_bugs
    from repro.fuzz.diff import default_opts

    if args.bug is not None and args.bug not in known_bugs():
        print(f"unknown bug {args.bug!r}; try: {' '.join(known_bugs())}",
              file=sys.stderr)
        return 2

    if args.replay:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"no corpus entries under {args.replay}", file=sys.stderr)
            return 2
        bad = 0
        for entry in entries:
            # At HEAD a repro recorded under a bug shim must pass clean.
            result = replay_entry(entry, with_bug=False)
            kind = result["verdict"]["kind"]
            tag = "ok" if kind == "ok" else "FAIL"
            if kind != "ok":
                bad += 1
            print(f"[{tag}] seed={entry['root_seed']} "
                  f"case={entry['case_index']} "
                  f"bug={entry['opts'].get('bug')} -> {kind}")
        print(f"{len(entries)} corpus repros replayed, {bad} regressed")
        return 1 if bad else 0

    opts = default_opts()
    if args.max_instructions is not None:
        opts["max_instructions"] = args.max_instructions
    # Fault-schedule differential runs are on by default: every config
    # also executes under seeded virtio.ring_stuck and irq.* schedules,
    # which have to agree across backends just like the fault-free run.
    if args.no_faults:
        opts["fault_rate"] = 0.0
    elif args.faults is not None:
        opts["fault_rate"] = args.faults
    else:
        opts["fault_rate"] = DEFAULT_FUZZ_FAULT_RATE
    if args.no_events:
        opts["events"] = False
    opts["bug"] = args.bug

    out = run_campaign(args.seed, args.cases, jobs=max(1, args.jobs),
                       opts=opts, shrink=args.shrink, out_dir=args.out,
                       log=lambda msg: print(msg, file=sys.stderr))
    if args.json:
        print(json.dumps(out["manifest"], indent=2, sort_keys=True))
    else:
        fz = out["manifest"]["extra"]["fuzz"]
        print(f"seed              : {args.seed}")
        print(f"cases             : {fz['cases']}")
        print(f"failures          : {len(fz['failures'])}")
        print(f"shrunk repros     : {len(fz['shrunk'])}")
        print("outcome classes   :")
        for outcome, count in fz["outcome_classes"].items():
            print(f"  {outcome:14s} {count}")
        if args.out:
            print(f"artifacts         : {args.out}/")
    return 1 if out["failures"] else 0


def _cmd_faults(args) -> int:
    from repro.faults.injector import site_catalog

    if not args.list:
        print("nothing to do (try --list)", file=sys.stderr)
        return 2
    sites = site_catalog()
    width = max(len(site) for site, _d in sites)
    for site, description in sites:
        subsystem = site.split(".", 1)[0]
        print(f"{site:{width}s}  [{subsystem}]  {description}")
    print(f"\n{len(sites)} registered fault sites")
    return 0


def _cmd_boot(args) -> int:
    from repro.bench.common import run_guest_workload
    from repro.core.modes import MMUVirtMode, VirtMode
    from repro.guest import workloads as wl

    if args.mode not in MODES:
        print(f"unknown mode {args.mode!r}; try: {' '.join(MODES)}",
              file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; try: "
              f"{' '.join(WORKLOADS)}", file=sys.stderr)
        return 2
    vmode_name, mmode_name, pv = MODES[args.mode]
    vmode = VirtMode(vmode_name) if vmode_name else None
    mmode = MMUVirtMode(mmode_name) if mmode_name else None
    workload = getattr(wl, args.workload)()
    metrics = run_guest_workload(args.mode, workload, vmode, mmode, pv)
    diag = metrics.diag
    print(f"mode              : {args.mode}")
    print(f"workload          : {args.workload}")
    print(f"clean run         : {diag.clean}")
    print(f"user result       : {diag.user_result}")
    print(f"syscalls          : {diag.syscalls}")
    print(f"guest cycles      : {metrics.guest_cycles:,}")
    print(f"vmm cycles        : {metrics.vmm_cycles:,}")
    print(f"exits             : {metrics.exits}")
    print(f"virtualization OK : {metrics.correct}")
    if metrics.exit_breakdown:
        print("exits by reason   :")
        for reason, count in sorted(metrics.exit_breakdown.items()):
            print(f"  {reason:32s} {count}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="pyvisor experiment and guest runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, modes, workloads")

    run_p = sub.add_parser("run", help="regenerate experiment tables")
    run_p.add_argument("experiment",
                       help="e1..e11, e6f/e7f/e7c (functional), or 'all'")
    run_p.add_argument("--quick", action="store_true",
                       help="smaller, CI-friendly variant where supported")
    run_p.add_argument("--json", action="store_true",
                       help="emit the run's metrics manifest as JSON "
                            "instead of tables")
    run_p.add_argument("--profile", action="store_true",
                       help="dump a cProfile report (top 25 by cumulative "
                            "time) to stderr after the run")
    run_p.add_argument("--shards", type=int, default=None,
                       help="shard count for shard-aware experiments "
                            "(e6, e8s, e10c); for e8s this is part of "
                            "the run's identity")
    run_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for shard-aware "
                            "experiments; results are independent of "
                            "this (default 1)")
    run_p.add_argument("--fleet", type=int, default=None,
                       help="e8s only: run one fleet size instead of "
                            "the default sweep")

    perf_p = sub.add_parser(
        "perf", help="measure host throughput (guest-MIPS, interp vs jit)"
    )
    perf_p.add_argument("--quick", action="store_true",
                        help="small CI-friendly workloads")
    perf_p.add_argument("--out", default="BENCH_HOST.json",
                        help="output JSON path (default BENCH_HOST.json)")
    perf_p.add_argument("--json", action="store_true",
                        help="print the JSON payload instead of the table")
    perf_p.add_argument("--baseline",
                        help="baseline JSON; exit 1 if any speedup ratio "
                             "regresses more than 20%% below it")
    perf_p.add_argument("--profile", action="store_true",
                        help="wrap the measurement in cProfile and embed "
                             "the top-25 hotspots (cumtime) in the output "
                             "manifest; for diagnosis, not for gating")

    shard_p = sub.add_parser(
        "shardbench",
        help="measure sharded-cluster wall-clock vs --jobs and check "
             "manifest parity",
    )
    shard_p.add_argument("--quick", action="store_true",
                         help="small CI-friendly configuration")
    shard_p.add_argument("--out", default="BENCH_SHARD.json",
                         help="output JSON path (default BENCH_SHARD.json)")
    shard_p.add_argument("--json", action="store_true",
                         help="print the JSON payload instead of the table")
    shard_p.add_argument("--baseline",
                         help="baseline JSON; exit 1 on parity breakage or "
                              "(same-core-count machines only) speedups "
                              "more than 20%% below it")

    boot_p = sub.add_parser("boot", help="boot NanoOS with a workload")
    boot_p.add_argument("--mode", default="hw-nested")
    boot_p.add_argument("--workload", default="hello")

    fuzz_p = sub.add_parser(
        "fuzz", help="differential fuzzing: interp vs jit vs bt, "
                     "shadow vs nested paging"
    )
    fuzz_p.add_argument("--seed", type=int, default=1,
                        help="campaign root seed (default 1)")
    fuzz_p.add_argument("--cases", type=int, default=200,
                        help="number of generated cases (default 200)")
    fuzz_p.add_argument("--jobs", type=int, default=1,
                        help="worker processes; results are independent "
                             "of this (default 1)")
    fuzz_p.add_argument("--shrink", action="store_true",
                        help="shrink failing cases to minimal repros")
    fuzz_p.add_argument("--max-instructions", type=int, default=None,
                        help="guest instruction budget per case")
    fuzz_p.add_argument("--faults", type=float, default=None, metavar="RATE",
                        help="fault-schedule rate for the seeded "
                             "virtio.ring_stuck and irq.* differential "
                             f"runs (default {DEFAULT_FUZZ_FAULT_RATE})")
    fuzz_p.add_argument("--no-faults", action="store_true",
                        help="disable the fault-schedule differential "
                             "runs (fault-free configs only)")
    fuzz_p.add_argument("--bug", default=None,
                        help="apply a known-bug shim (see repro.fuzz.bugs) "
                             "to verify the harness catches it")
    fuzz_p.add_argument("--out", default=None, metavar="DIR",
                        help="write manifest.json + shrunk repros here")
    fuzz_p.add_argument("--replay", default=None, metavar="DIR",
                        help="replay a corpus directory as a regression "
                             "suite instead of fuzzing")
    fuzz_p.add_argument("--no-events", action="store_true",
                        help="disable the seeded asynchronous event "
                             "schedules (interrupt-free runs)")
    fuzz_p.add_argument("--json", action="store_true",
                        help="print the campaign manifest as JSON")

    faults_p = sub.add_parser(
        "faults", help="inspect the fault-injection registry"
    )
    faults_p.add_argument("--list", action="store_true",
                          help="enumerate every registered fault site "
                               "with its subsystem and description")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "shardbench":
        return _cmd_shardbench(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "faults":
        return _cmd_faults(args)
    return _cmd_boot(args)


if __name__ == "__main__":
    raise SystemExit(main())
