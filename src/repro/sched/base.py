"""Scheduler interface and post-run statistics."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sched.entities import VCpuTask
from repro.sim.kernel import MSEC
from repro.util.stats import Summary, jain_fairness


class Scheduler:
    """Dispatch policy driven by :class:`~repro.sched.host.SchedHost`."""

    #: Default time slice handed to a picked task.
    quantum_us: int = 30 * MSEC

    #: Registry namespace segment for this policy: the host publishes
    #: its counters under ``sched.<metrics_name>.*``.
    metrics_name: str = "policy"

    def add_task(self, task: VCpuTask, now: int) -> None:
        raise NotImplementedError

    def on_ready(self, task: VCpuTask, now: int) -> None:
        """Task became runnable (wake or preemption requeue)."""
        raise NotImplementedError

    def pick(self, now: int) -> Optional[VCpuTask]:
        """Choose and dequeue the next task to run, or None if idle."""
        raise NotImplementedError

    def account(self, task: VCpuTask, used_us: int, now: int) -> None:
        """Charge ``used_us`` of CPU to a task that just ran."""

    def maybe_refill(self, now: int) -> None:
        """Periodic bookkeeping hook (credit refill)."""

    def on_block(self, task: VCpuTask, now: int) -> None:
        """Task blocked voluntarily."""

    def should_preempt(self, woken: VCpuTask, running: VCpuTask) -> bool:
        """True if a just-woken task should interrupt a running one."""
        return False

    def limit_slice(self, task: VCpuTask) -> Optional[int]:
        """Upper bound (us) for this dispatch beyond the quantum, or None."""
        return None


@dataclass(frozen=True)
class SchedStats:
    """What E5 reports per run."""

    duration_us: int
    cpu_time: Dict[str, int]
    achieved_share: Dict[str, float]
    expected_share: Dict[str, float]
    #: mean |achieved - expected| over tasks, in share points.
    share_error: float
    fairness: float  # Jain index over achieved/expected ratios
    wake_latency: Dict[str, Optional[Summary]]

    @classmethod
    def collect(
        cls, tasks: Sequence[VCpuTask], duration_us: int, num_cores: int = 1
    ) -> "SchedStats":
        total_weight = sum(t.weight for t in tasks)
        capacity = duration_us * num_cores
        cpu_time = {t.name: t.cpu_time for t in tasks}
        achieved = {t.name: t.cpu_time / capacity for t in tasks}
        expected = {t.name: t.weight / total_weight for t in tasks}
        errors = [abs(achieved[t.name] - expected[t.name]) for t in tasks]
        ratios: List[float] = []
        for t in tasks:
            if expected[t.name] > 0:
                ratios.append(achieved[t.name] / expected[t.name])
        latencies = {
            t.name: (Summary.of(t.wake_latencies) if t.wake_latencies else None)
            for t in tasks
        }
        return cls(
            duration_us=duration_us,
            cpu_time=cpu_time,
            achieved_share=achieved,
            expected_share=expected,
            share_error=sum(errors) / len(errors) if errors else 0.0,
            fairness=jain_fairness(ratios) if ratios else 1.0,
            wake_latency=latencies,
        )
