"""Xen-style credit scheduler.

Every accounting period each task receives credits proportional to its
weight (the total minted per period equals the period's CPU capacity).
Running burns credits 1:1 with CPU time. Tasks with positive credits
are UNDER priority and run before OVER tasks (negative credits), which
gives proportional fairness over the accounting horizon. Two classic
refinements, both switchable for the E5/E9 ablations:

* **boost**: a task that wakes from blocking with credits remaining is
  placed in the BOOST priority class until it is next descheduled --
  this is what keeps I/O latency low under CPU contention;
* **caps**: an optional hard limit on CPU share per period, enforced by
  parking a task that exhausts its cap until the next refill.
"""

from collections import deque
from typing import Deque, Dict, Optional

from repro.sched.base import Scheduler
from repro.sched.entities import VCpuTask
from repro.sim.kernel import MSEC
from repro.util.errors import SchedulerError

BOOST, UNDER, OVER = 0, 1, 2


class CreditScheduler(Scheduler):
    """Proportional share with UNDER/OVER/BOOST priorities."""

    metrics_name = "credit"

    def __init__(
        self,
        quantum_us: int = 10 * MSEC,  # Xen's tick: accounting granularity
        period_us: int = 30 * MSEC,
        boost: bool = True,
        num_cores: int = 1,
    ):
        if quantum_us <= 0 or period_us <= 0:
            raise SchedulerError("quantum and period must be positive")
        self.quantum_us = quantum_us
        self.period_us = period_us
        self.boost_enabled = boost
        self.num_cores = num_cores
        self._tasks: Dict[str, VCpuTask] = {}
        self._credits: Dict[str, float] = {}
        self._used_this_period: Dict[str, int] = {}
        self._parked: Dict[str, bool] = {}
        self._boosted: Dict[str, bool] = {}
        self._queues = {p: deque() for p in (BOOST, UNDER, OVER)}  # type: Dict[int, Deque[VCpuTask]]
        self._next_refill = 0

    # -- Scheduler interface ---------------------------------------------

    def add_task(self, task: VCpuTask, now: int) -> None:
        if task.name in self._tasks:
            raise SchedulerError(f"duplicate task {task.name}")
        self._tasks[task.name] = task
        self._credits[task.name] = 0.0
        self._used_this_period[task.name] = 0
        self._parked[task.name] = False
        self._boosted[task.name] = False
        self._refill_one(task)
        if task.runnable:
            self._enqueue(task)

    def on_ready(self, task: VCpuTask, now: int) -> None:
        if self._parked[task.name]:
            return  # capped out: stays parked until refill
        self._enqueue(task)

    def on_block(self, task: VCpuTask, now: int) -> None:
        self._boosted[task.name] = False

    def wake(self, task: VCpuTask, now: int) -> None:
        """Called by the host when a blocked task wakes (not requeue)."""
        if (
            self.boost_enabled
            and self._credits[task.name] > 0
            and not self._parked[task.name]
        ):
            self._boosted[task.name] = True

    def pick(self, now: int) -> Optional[VCpuTask]:
        for priority in (BOOST, UNDER, OVER):
            queue = self._queues[priority]
            while queue:
                task = queue.popleft()
                if task.runnable and not self._parked[task.name]:
                    return task
        return None

    def account(self, task: VCpuTask, used_us: int, now: int) -> None:
        self._credits[task.name] -= used_us
        self._used_this_period[task.name] += used_us
        self._boosted[task.name] = False  # boost lasts one dispatch
        cap = task.cap_percent
        if cap is not None:
            allowed = self.period_us * cap // 100
            if self._used_this_period[task.name] >= allowed:
                self._parked[task.name] = True

    def maybe_refill(self, now: int) -> None:
        if now < self._next_refill:
            return
        self._next_refill = now + self.period_us
        for task in self._tasks.values():
            self._refill_one(task)
            self._used_this_period[task.name] = 0
            if self._parked[task.name]:
                self._parked[task.name] = False
                if task.runnable:
                    self._enqueue(task)
        # Refill changes priorities; re-sort queued tasks so a task that
        # crossed OVER -> UNDER doesn't languish in the stale queue.
        queued = []
        for priority in (BOOST, UNDER, OVER):
            queue = self._queues[priority]
            while queue:
                queued.append(queue.popleft())
        for task in queued:
            self._enqueue(task)

    # -- internals ----------------------------------------------------------

    def _refill_one(self, task: VCpuTask) -> None:
        total_weight = sum(t.weight for t in self._tasks.values())
        mint = self.period_us * self.num_cores
        share = mint * task.weight / total_weight
        # Cap accumulation at one period's worth to avoid unbounded
        # credit for long-blocked tasks (as Xen does).
        self._credits[task.name] = min(self._credits[task.name] + share, share)

    def limit_slice(self, task: VCpuTask) -> Optional[int]:
        """Enforce caps exactly: never run past this period's allowance."""
        cap = task.cap_percent
        if cap is None:
            return None
        allowed = self.period_us * cap // 100
        remaining = allowed - self._used_this_period[task.name]
        return max(remaining, 0)

    def should_preempt(self, woken: VCpuTask, running: VCpuTask) -> bool:
        """Tickle: a BOOST wakeup preempts any non-boosted vCPU."""
        return (
            self.boost_enabled
            and self._boosted.get(woken.name, False)
            and not self._boosted.get(running.name, False)
        )

    def _priority(self, task: VCpuTask) -> int:
        if self._boosted[task.name]:
            return BOOST
        return UNDER if self._credits[task.name] > 0 else OVER

    def _enqueue(self, task: VCpuTask) -> None:
        self._queues[self._priority(task)].append(task)

    def credits_of(self, name: str) -> float:
        return self._credits[name]
