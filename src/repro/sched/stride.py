"""Stride scheduling: deterministic proportional share.

Each task has ``stride = STRIDE1 / weight``; the scheduler always runs
the task with the smallest *pass* value and advances its pass by stride
scaled by the CPU it actually used. Waldspurger & Weihl (OSDI'94).
"""

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sched.base import Scheduler
from repro.sched.entities import VCpuTask
from repro.sim.kernel import MSEC
from repro.util.errors import SchedulerError

STRIDE1 = 1 << 20


class StrideScheduler(Scheduler):
    """Min-pass dispatch with lazy heap deletion."""

    metrics_name = "stride"

    def __init__(self, quantum_us: int = 10 * MSEC):
        if quantum_us <= 0:
            raise SchedulerError("quantum must be positive")
        self.quantum_us = quantum_us
        self._pass: Dict[str, float] = {}
        self._stride: Dict[str, float] = {}
        self._heap: List[Tuple[float, int, VCpuTask]] = []
        self._counter = 0
        self._global_pass = 0.0

    def add_task(self, task: VCpuTask, now: int) -> None:
        if task.name in self._stride:
            raise SchedulerError(f"duplicate task {task.name}")
        self._stride[task.name] = STRIDE1 / task.weight
        self._pass[task.name] = self._global_pass
        if task.runnable:
            self._push(task)

    def on_ready(self, task: VCpuTask, now: int) -> None:
        # A waking task resumes at the global pass so it cannot starve
        # others with credit hoarded while asleep.
        self._pass[task.name] = max(self._pass[task.name], self._global_pass)
        self._push(task)

    def pick(self, now: int) -> Optional[VCpuTask]:
        while self._heap:
            pass_value, _seq, task = heapq.heappop(self._heap)
            if task.runnable and pass_value == self._pass[task.name]:
                self._global_pass = pass_value
                return task
        return None

    def account(self, task: VCpuTask, used_us: int, now: int) -> None:
        self._pass[task.name] += (
            self._stride[task.name] * used_us / self.quantum_us
        )

    def _push(self, task: VCpuTask) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (self._pass[task.name], self._counter, task))
