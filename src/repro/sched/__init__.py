"""vCPU scheduling (experiment E5).

Runs on the discrete-event engine: each vCPU is a task with a workload
model (always-runnable CPU hog, or burst/block interactive), physical
cores run a dispatch loop, and a pluggable scheduler picks who runs.

Schedulers:

* :class:`~repro.sched.rr.RoundRobinScheduler` -- the baseline; ignores
  weights entirely.
* :class:`~repro.sched.credit.CreditScheduler` -- Xen's credit
  scheduler: periodic credit refill proportional to weight, UNDER/OVER
  priorities, optional BOOST for waking interactive vCPUs, per-vCPU
  caps.
* :class:`~repro.sched.stride.StrideScheduler` -- deterministic
  proportional share via per-task strides.
"""

from repro.sched.entities import VCpuTask, CpuBoundWork, InteractiveWork, TaskState
from repro.sched.base import Scheduler, SchedStats
from repro.sched.rr import RoundRobinScheduler
from repro.sched.credit import CreditScheduler
from repro.sched.stride import StrideScheduler
from repro.sched.host import SchedHost, run_schedule

__all__ = [
    "VCpuTask",
    "CpuBoundWork",
    "InteractiveWork",
    "TaskState",
    "Scheduler",
    "SchedStats",
    "RoundRobinScheduler",
    "CreditScheduler",
    "StrideScheduler",
    "SchedHost",
    "run_schedule",
]
