"""The dispatch loop binding tasks, cores, and a scheduler to the sim.

Implements wake preemption ("tickling"): when a task wakes and the
scheduler's ``should_preempt`` says it outranks what a core is running,
the host interrupts that core mid-slice, the partial slice is accounted,
and the preempted task is requeued. This is the mechanism behind the
credit scheduler's BOOST latency win in experiment E5.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.clock import SimClock
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.sched.base import Scheduler, SchedStats
from repro.sched.credit import CreditScheduler
from repro.sched.entities import BLOCK, RUN, TaskState, VCpuTask
from repro.sim.kernel import Interrupted, Process, Simulator, Timeout
from repro.util.errors import SchedulerError

#: Poll interval while a core is idle. Small enough for latency
#: measurements, large enough not to dominate event counts.
IDLE_POLL_US = 100


class SchedHost:
    """One host with ``num_cores`` physical CPUs and one scheduler."""

    preempt_interrupts = counter_attr()

    def __init__(self, sim: Simulator, scheduler: Scheduler, num_cores: int = 1,
                 metrics=None):
        if num_cores <= 0:
            raise SchedulerError("need at least one core")
        self.sim = sim
        self.scheduler = scheduler
        self.num_cores = num_cores
        if metrics is None:
            # Private registry stamped in sim-time; pass a shared
            # ``sched`` scope to publish into a run's registry instead.
            metrics = MetricsRegistry(clock=SimClock(sim)).scope("sched")
        #: ``sched.<policy>`` scope: dispatches, preemptions, wake
        #: latency histogram, all stamped in simulator microseconds.
        self.metrics = metrics.scope(scheduler.metrics_name)
        self._sched_dispatches = metrics.counter("dispatches")
        self._m_dispatches = self.metrics.counter("dispatches")
        self._m_preemptions = self.metrics.counter("preemptions")
        self.tasks: List[VCpuTask] = []
        self._end_time: Optional[int] = None
        #: core -> running task while dispatched.
        self._running: Dict[int, VCpuTask] = {}
        self._core_procs: Dict[int, Process] = {}

    def add_task(self, task: VCpuTask) -> None:
        self.tasks.append(task)
        if task.runnable:
            task.note_ready(self.sim.now)
        self.scheduler.add_task(task, self.sim.now)

    def run(self, duration_us: int) -> SchedStats:
        """Simulate for ``duration_us`` and return the statistics."""
        self._end_time = self.sim.now + duration_us
        for core in range(self.num_cores):
            self._core_procs[core] = self.sim.spawn(
                self._core_loop(core), name=f"core-{core}"
            )
        self.sim.run(until=self._end_time)
        return SchedStats.collect(self.tasks, duration_us, self.num_cores)

    # -- internals -------------------------------------------------------

    def _core_loop(self, core_id: int):
        sim = self.sim
        sched = self.scheduler
        while sim.now < self._end_time:
            sched.maybe_refill(sim.now)
            if all(t.state is TaskState.DONE for t in self.tasks):
                return
            task = sched.pick(sim.now)
            if task is None:
                try:
                    yield Timeout(IDLE_POLL_US)
                except Interrupted:
                    pass  # woken early: re-pick immediately
                continue
            was_waiting = task.ready_since is not None
            task.note_dispatched(sim.now)
            self._sched_dispatches.inc()
            self._m_dispatches.inc()
            if was_waiting and task.wake_latencies:
                self.metrics.observe("wake_latency_us", task.wake_latencies[-1])
            slice_ = min(
                sched.quantum_us,
                task.remaining_in_phase,
                self._end_time - sim.now,
            )
            if self._end_time - sim.now <= 0:
                return
            limit = sched.limit_slice(task)
            if limit is not None:
                slice_ = min(slice_, limit)
            if slice_ <= 0:
                # Capped out between pick and dispatch: treat like a
                # zero-length run so accounting parks it.
                sched.account(task, 0, sim.now)
                continue
            self._running[core_id] = task
            start = sim.now
            preempted = False
            try:
                yield Timeout(slice_)
            except Interrupted:
                preempted = True
                self.preempt_interrupts += 1
            finally:
                self._running.pop(core_id, None)
            used = sim.now - start
            task.cpu_time += used
            task.remaining_in_phase -= used
            sched.account(task, used, sim.now)
            if task.remaining_in_phase > 0:
                task.preemptions += 1
                self._m_preemptions.inc()
                task.note_ready(sim.now)
                sched.on_ready(task, sim.now)
                continue
            self._finish_phase(task)

    def _finish_phase(self, task: VCpuTask) -> None:
        sim = self.sim
        nxt = task._advance_phase()
        if nxt is None:
            return  # task done
        kind, amount = nxt
        if kind == RUN:
            task.note_ready(sim.now)
            self.scheduler.on_ready(task, sim.now)
            return
        assert kind == BLOCK
        task.state = TaskState.BLOCKED
        task.blocks += 1
        self.scheduler.on_block(task, sim.now)

        def wake(t=task):
            follow = t._advance_phase()
            if follow is None:
                return
            f_kind, _amount = follow
            if f_kind != RUN:
                raise SchedulerError(
                    f"{t.name}: workload yielded consecutive BLOCK phases"
                )
            t.note_ready(sim.now)
            if isinstance(self.scheduler, CreditScheduler):
                self.scheduler.wake(t, sim.now)
            self.scheduler.on_ready(t, sim.now)
            self._tickle(t)

        sim.call_after(amount, wake)

    def _tickle(self, woken: VCpuTask) -> None:
        """Preempt a core if the scheduler ranks the woken task higher."""
        # An idle core will re-pick at its next poll; preempting a
        # running lower-priority task needs an explicit interrupt.
        for core_id, running in list(self._running.items()):
            if self.scheduler.should_preempt(woken, running):
                self._core_procs[core_id].interrupt("tickle")
                return


def run_schedule(
    scheduler: Scheduler,
    tasks: Sequence[VCpuTask],
    duration_us: int,
    num_cores: int = 1,
    metrics=None,
) -> SchedStats:
    """Convenience wrapper: fresh sim, add tasks, run, return stats."""
    sim = Simulator()
    host = SchedHost(sim, scheduler, num_cores=num_cores, metrics=metrics)
    for task in tasks:
        host.add_task(task)
    return host.run(duration_us)
