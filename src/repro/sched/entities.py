"""Schedulable vCPU tasks and their workload models."""

import enum
from typing import Iterator, List, Optional, Tuple

from repro.sim.kernel import MSEC, USEC
from repro.util.errors import SchedulerError

#: Workload phase kinds.
RUN = "run"
BLOCK = "block"


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class CpuBoundWork:
    """Always-runnable compute, optionally bounded in total CPU time."""

    def __init__(self, total_us: Optional[int] = None):
        self.total_us = total_us

    def phases(self) -> Iterator[Tuple[str, int]]:
        if self.total_us is None:
            while True:
                yield (RUN, 10 * MSEC)
        else:
            yield (RUN, self.total_us)


class InteractiveWork:
    """Burst-then-block workload (an I/O-bound or latency-sensitive vCPU)."""

    def __init__(self, burst_us: int = 1 * MSEC, block_us: int = 10 * MSEC,
                 repeats: Optional[int] = None):
        if burst_us <= 0 or block_us < 0:
            raise SchedulerError("burst must be positive, block non-negative")
        self.burst_us = burst_us
        self.block_us = block_us
        self.repeats = repeats

    def phases(self) -> Iterator[Tuple[str, int]]:
        count = 0
        while self.repeats is None or count < self.repeats:
            yield (RUN, self.burst_us)
            yield (BLOCK, self.block_us)
            count += 1


class VCpuTask:
    """One schedulable virtual CPU."""

    def __init__(self, name: str, weight: int = 256,
                 cap_percent: Optional[int] = None, workload=None):
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        if cap_percent is not None and not 0 < cap_percent <= 100:
            raise SchedulerError(f"cap must be in 1..100, got {cap_percent}")
        self.name = name
        self.weight = weight
        self.cap_percent = cap_percent
        self.workload = workload or CpuBoundWork()

        self.state = TaskState.READY
        self.cpu_time = 0  # total on-CPU microseconds
        self.remaining_in_phase = 0
        self._phases = self.workload.phases()
        self.ready_since: Optional[int] = None  # for wait-latency stats
        self.wake_latencies: List[int] = []
        self.preemptions = 0
        self.blocks = 0
        self._advance_phase()

    def _advance_phase(self) -> Optional[Tuple[str, int]]:
        try:
            kind, amount = next(self._phases)
        except StopIteration:
            self.state = TaskState.DONE
            return None
        self.remaining_in_phase = amount
        return (kind, amount)

    @property
    def runnable(self) -> bool:
        return self.state is TaskState.READY

    def note_ready(self, now: int) -> None:
        self.state = TaskState.READY
        self.ready_since = now

    def note_dispatched(self, now: int) -> None:
        if self.ready_since is not None:
            self.wake_latencies.append(now - self.ready_since)
            self.ready_since = None
        self.state = TaskState.RUNNING

    def __repr__(self) -> str:
        return (
            f"<VCpuTask {self.name} w={self.weight} {self.state.value} "
            f"cpu={self.cpu_time}us>"
        )
