"""Round-robin scheduler: the weight-blind baseline."""

from collections import deque
from typing import Deque, Optional

from repro.sched.base import Scheduler
from repro.sched.entities import VCpuTask
from repro.sim.kernel import MSEC


class RoundRobinScheduler(Scheduler):
    """FIFO queue, fixed quantum, no notion of weight."""

    metrics_name = "rr"

    def __init__(self, quantum_us: int = 30 * MSEC):
        self.quantum_us = quantum_us
        self._queue: Deque[VCpuTask] = deque()

    def add_task(self, task: VCpuTask, now: int) -> None:
        if task.runnable:
            self._queue.append(task)

    def on_ready(self, task: VCpuTask, now: int) -> None:
        self._queue.append(task)

    def pick(self, now: int) -> Optional[VCpuTask]:
        while self._queue:
            task = self._queue.popleft()
            if task.runnable:
                return task
        return None
