"""Recovery actions: ReHype-style micro-reboot and retry/backoff policy.

Micro-reboot (Le & Tamir, ReHype): when the *virtualization layer*
around a VM wedges -- a stalled vCPU loop, corrupted shadow/EPT
structures -- the guest itself is usually still intact. Recovery
rebuilds the hypervisor-private state (fresh VM container, MMU,
device models) while preserving the guest-visible state: memory, vCPU
registers, device-architectural state. Pages known to be corrupted are
the exception -- those roll back to the latest checkpoint.

:class:`RetryPolicy` is the shared capped-exponential-backoff schedule
used by migration transfer retries (and available to any other
subsystem with transient faults).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.snapshot import VMSnapshot, restore_vm, snapshot_vm
from repro.obs.registry import counter_attr
from repro.util.errors import ConfigError
from repro.util.units import PAGE_SIZE

_ZERO_PAGE = b"\x00" * PAGE_SIZE


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: base * 2^(attempt-1), clamped to cap."""

    max_retries: int = 4
    backoff_base_cycles: int = 10_000
    backoff_cap_cycles: int = 160_000

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base_cycles <= 0 or self.backoff_cap_cycles <= 0:
            raise ConfigError("backoff cycles must be positive")

    def backoff_cycles(self, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            raise ConfigError("retry attempts are 1-based")
        return min(self.backoff_cap_cycles,
                   self.backoff_base_cycles << (attempt - 1))

    def cumulative_backoff_cycles(self, attempts: int) -> int:
        """Total backoff spent across retries 1..``attempts``.

        The worst case (``attempts == max_retries``) is the budget a
        giveup curve charges before abandoning a transfer.
        """
        if attempts < 0:
            raise ConfigError("attempts must be non-negative")
        return sum(self.backoff_cycles(a) for a in range(1, attempts + 1))


class MicroRebooter:
    """Per-hypervisor micro-reboot service with periodic checkpoints.

    ``checkpoint(vm)`` stores the VM's latest snapshot (serialized, as a
    crash-consistent backup would be). ``reboot(vm)`` tears the wedged
    VM down and restores it into a fresh container:

    * guest memory and vCPU/device state are taken from the *live* VM
      (ReHype: the guest outlives the hypervisor fault), except
    * pages previously reported via :meth:`mark_corrupted`, which are
      restored from the latest checkpoint instead;
    * ``from_checkpoint=True`` abandons the live state entirely and
      rolls the whole VM back to the checkpoint.
    """

    reboots = counter_attr()
    checkpoints_taken = counter_attr()

    def __init__(self, hypervisor):
        self.hv = hypervisor
        self.metrics = hypervisor.registry.scope("faults.recovery")
        self._checkpoints: Dict[str, bytes] = {}
        self._corrupted: Dict[str, Set[int]] = {}

    def checkpoint(self, vm) -> VMSnapshot:
        """Store (and return) a fresh snapshot of ``vm``."""
        snap = snapshot_vm(vm)
        self._checkpoints[vm.name] = snap.to_bytes()
        self.checkpoints_taken += 1
        return snap

    def has_checkpoint(self, name: str) -> bool:
        return name in self._checkpoints

    def mark_corrupted(self, vm_name: str, gfns) -> None:
        """Report guest pages whose contents can no longer be trusted."""
        self._corrupted.setdefault(vm_name, set()).update(gfns)

    def reboot(self, vm, from_checkpoint: bool = False):
        """Micro-reboot ``vm``; returns the recovered (paused) VM."""
        corrupted = self._corrupted.pop(vm.name, set())
        if from_checkpoint:
            snap = self._restore_checkpoint(vm.name)
        else:
            snap = snapshot_vm(vm)  # the guest survives the reboot
            if corrupted:
                self._patch_corrupted(vm.name, snap, corrupted)
        name = vm.name
        self.hv.destroy_vm(vm)
        recovered = restore_vm(self.hv, snap, name=name)
        self.reboots += 1
        return recovered

    # -- internals ---------------------------------------------------------

    def _restore_checkpoint(self, name: str) -> VMSnapshot:
        blob = self._checkpoints.get(name)
        if blob is None:
            raise ConfigError(
                f"no checkpoint stored for VM {name!r}; cannot roll back"
            )
        return VMSnapshot.from_bytes(blob)

    def _patch_corrupted(self, name: str, snap: VMSnapshot,
                         corrupted: Set[int]) -> None:
        """Replace corrupted pages in ``snap`` with checkpointed content."""
        good = self._restore_checkpoint(name)
        for gfn in corrupted:
            content = good.pages.get(gfn)
            if gfn not in good.mapped_gfns:
                # Page did not exist at checkpoint time: drop it to zero
                # rather than keep poisoned content.
                content = _ZERO_PAGE
            snap.pages[gfn] = content if content is not None else _ZERO_PAGE
            if snap.pages[gfn] == _ZERO_PAGE:
                del snap.pages[gfn]  # snapshots elide zero pages
