"""Fault injection, failure detection, and recovery (experiment E10).

A production VMM is defined as much by what it does when things break
as by its happy path. This package provides the three layers:

* :mod:`repro.faults.injector` -- deterministic, seeded fault schedules
  evaluated at named injection points across every runtime subsystem
  (devices, links, migration, the hypervisor run loop, cluster hosts).
* :mod:`repro.faults.watchdog` -- detection: the guest-progress
  watchdog (hung-VM detection over the retired-instruction heartbeat)
  and per-device operation timeouts with a reset path.
* :mod:`repro.faults.recovery` -- recovery: ReHype-style micro-reboot
  from/with snapshots, and the shared capped-exponential-backoff retry
  policy used by migration. Host failover lives with the placement
  logic in :func:`repro.cluster.placement.failover`.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    known_sites,
    register_site,
    site_catalog,
)
from repro.faults.recovery import MicroRebooter, RetryPolicy
from repro.faults.watchdog import (
    DeviceTimeoutMonitor,
    GuestProgressWatchdog,
    IRQLineWatchdog,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "known_sites",
    "register_site",
    "site_catalog",
    "GuestProgressWatchdog",
    "DeviceTimeoutMonitor",
    "IRQLineWatchdog",
    "MicroRebooter",
    "RetryPolicy",
]
