"""Failure detection: guest-progress watchdog, device operation timeouts.

Detection is deliberately cheap and hypervisor-side, as in real
platforms: the guest is never trusted to report its own death.

* :class:`GuestProgressWatchdog` -- heartbeat is the vCPU's retired-
  instruction counter, observed once per run-loop pump. A VM whose
  counter freezes for ``idle_pump_limit`` consecutive pumps is declared
  hung (the run loop returns ``RunOutcome.HUNG``); recovery is a
  ReHype-style micro-reboot (:mod:`repro.faults.recovery`).
* :class:`DeviceTimeoutMonitor` -- per-device operation timeout: a
  device that keeps accepting operations but stops completing them is
  reset after ``stall_checks`` stalled polls, which clears the wedge
  and drains the backlog.
* :class:`IRQLineWatchdog` -- per-line interrupt health over an
  :class:`~repro.devices.irq.InterruptController`: a line that stays
  pending for ``stuck_polls`` consecutive polls is declared stuck and
  force-acknowledged (a guest that lost the interrupt, or a device
  whose raise was never serviced); a line whose raise count jumps by
  ``storm_threshold`` or more between polls is flagged as storming.
"""

from repro.devices.irq import NUM_LINES
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import ConfigError


class GuestProgressWatchdog:
    """Hung-VM detector over the retired-instruction heartbeat.

    ``beat(instret)`` is called by the hypervisor run loop immediately
    before each guest entry (so legally-idle halted VMs, which never
    reach guest entry without pending work, cannot false-positive).
    """

    hangs_detected = counter_attr()

    def __init__(self, idle_pump_limit: int = 8, metrics=None):
        if idle_pump_limit <= 0:
            raise ConfigError("idle_pump_limit must be positive")
        self.idle_pump_limit = idle_pump_limit
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("faults.watchdog"))
        self.last_instret = None
        self.idle_pumps = 0
        self.pumps = 0

    def beat(self, instret: int) -> bool:
        """Observe one heartbeat; True when the VM is declared hung."""
        self.pumps += 1
        if self.last_instret is None or instret > self.last_instret:
            self.last_instret = instret
            self.idle_pumps = 0
            return False
        self.idle_pumps += 1
        if self.idle_pumps >= self.idle_pump_limit:
            self.hangs_detected += 1
            self.idle_pumps = 0  # re-arm for the recovered VM
            return True
        return False

    def __repr__(self) -> str:
        return (f"<GuestProgressWatchdog idle={self.idle_pumps}/"
                f"{self.idle_pump_limit} hangs={self.hangs_detected}>")


class DeviceTimeoutMonitor:
    """Operation timeout + reset path for one device.

    The device contract is three members: ``ops_submitted`` and
    ``ops_completed`` monotonic counters, and ``reset()`` which clears
    any wedge and serves the backlog. ``check()`` is polled by the host
    (tests and E10 poll it per device pump); after ``stall_checks``
    consecutive polls with outstanding-but-unprogressing work the device
    is reset.
    """

    timeouts = counter_attr()  # resets this monitor fired

    def __init__(self, device, stall_checks: int = 2, metrics=None):
        if stall_checks <= 0:
            raise ConfigError("stall_checks must be positive")
        for member in ("ops_submitted", "ops_completed", "reset"):
            if not hasattr(device, member):
                raise ConfigError(
                    f"{type(device).__name__} lacks {member!r}; cannot monitor"
                )
        self.device = device
        self.stall_checks = stall_checks
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("faults.timeout"))
        self._completed = device.ops_completed
        self._submitted = device.ops_submitted
        # Attaching to an already-wedged device counts its backlog.
        self._outstanding = device.ops_submitted > device.ops_completed
        self._stalled = 0

    def check(self) -> bool:
        """Poll once; True when the poll timed out and reset the device."""
        submitted = self.device.ops_submitted
        completed = self.device.ops_completed
        if completed > self._completed:
            # Progress: everything up to the seen submissions is assumed
            # to be completing normally.
            self._completed = completed
            self._submitted = submitted
            self._outstanding = False
            self._stalled = 0
            return False
        if submitted > self._submitted:
            self._submitted = submitted
            self._outstanding = True
        if not self._outstanding:
            return False
        self._stalled += 1
        if self._stalled < self.stall_checks:
            return False
        self.timeouts += 1
        self.device.reset()
        # Resync: the reset typically completes the backlog synchronously.
        self._completed = self.device.ops_completed
        self._submitted = self.device.ops_submitted
        self._outstanding = False
        self._stalled = 0
        return True

    def __repr__(self) -> str:
        return (f"<DeviceTimeoutMonitor {type(self.device).__name__} "
                f"stalled={self._stalled}/{self.stall_checks} "
                f"timeouts={self.timeouts}>")


class IRQLineWatchdog:
    """Stuck-line and interrupt-storm detector for one PIC.

    ``check()`` is polled host-side (per device pump, like
    :class:`DeviceTimeoutMonitor`). Two per-line conditions:

    * **stuck**: the line has stayed pending for ``stuck_polls``
      consecutive polls with no new raises landing on it -- the
      interrupt was raised but never serviced (guest lost it, masked
      forever, or the handler died). Recovery force-acknowledges the
      line so a level-triggered device can re-raise.
    * **storm**: the line's raise count grew by at least
      ``storm_threshold`` since the previous poll -- a device (or an
      injected ``irq.storm`` fault) is hammering the line faster than
      any guest can service it.

    Returns the list of ``("stuck"|"storm", line)`` events this poll.
    """

    stuck_lines = counter_attr()
    storms_detected = counter_attr()

    def __init__(self, controller, stuck_polls: int = 4,
                 storm_threshold: int = 8, metrics=None):
        if stuck_polls <= 0:
            raise ConfigError("stuck_polls must be positive")
        if storm_threshold <= 0:
            raise ConfigError("storm_threshold must be positive")
        for member in ("pending", "raise_counts"):
            if not hasattr(controller, member):
                raise ConfigError(
                    f"{type(controller).__name__} lacks {member!r}; "
                    f"cannot watch"
                )
        self.controller = controller
        self.stuck_polls = stuck_polls
        self.storm_threshold = storm_threshold
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("faults.irqwatch"))
        self._pending_streak = [0] * NUM_LINES
        self._seen_raises = list(controller.raise_counts)

    def check(self):
        """Poll once; returns the detection events for this poll."""
        events = []
        pic = self.controller
        for line in range(NUM_LINES):
            raises = pic.raise_counts[line]
            delta = raises - self._seen_raises[line]
            self._seen_raises[line] = raises
            if delta >= self.storm_threshold:
                self.storms_detected += 1
                self.metrics.counter(f"storm.line{line}").inc()
                events.append(("storm", line))
            if pic.pending[line] and delta == 0:
                self._pending_streak[line] += 1
                if self._pending_streak[line] >= self.stuck_polls:
                    self.stuck_lines += 1
                    self.metrics.counter(f"stuck.line{line}").inc()
                    pic.pending[line] = False  # force-ack to unwedge
                    self._pending_streak[line] = 0
                    events.append(("stuck", line))
            else:
                self._pending_streak[line] = 0
        return events

    def __repr__(self) -> str:
        return (f"<IRQLineWatchdog stuck={self.stuck_lines} "
                f"storms={self.storms_detected}>")
