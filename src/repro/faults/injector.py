"""Deterministic fault injection: plans, sites, and the injector.

Every fault in pyvisor fires from a :class:`FaultInjector` evaluated at
a **named injection point** (a "site"): subsystems ask
``injector.fires("link.drop")`` at each fault opportunity and act on the
answer. Decisions come from per-site :class:`~repro.util.rng.DeterministicRNG`
streams forked from one seed, so a fault schedule is a pure function of
``(plan, seed)`` -- rerunning an experiment replays byte-for-byte the
same faults (assert with :meth:`FaultInjector.trace_bytes`).

Site names are validated against a central registry at plan-build time:
a :class:`FaultSpec` naming an unknown site (say, a misspelling of
``migrate.link_drop``) raises :class:`~repro.util.errors.ConfigError`
instead of silently never firing. Subsystems defining new injection
points declare them with :func:`register_site` at import time.

Known sites (unplanned-but-registered sites never fire):

========================  ====================================================
``block.io_error``        emulated disk completes a command with an I/O error
``block.stuck``           emulated disk wedges: accepts commands, never
                          completes them (cleared by ``reset()``)
``virtio.ring_stuck``     virtio device ignores kicks; the ring stalls until
                          the device is reset
``link.drop``             in-flight transfer dies partway (LinkError)
``link.degrade``          transfer runs at a fraction of link bandwidth
``link.partition``        link goes down for ``partition_ticks``
``migration.xfer_drop``   migration stream breaks mid-batch (retry/backoff)
``migration.page_corrupt``page corrupted in flight; checksum verify catches it
``migrate.link_drop``     DES pre-copy model: a round's transfer attempt dies
                          partway (backoff-resend, giveup past the budget)
``migrate.round_stall``   DES pre-copy model / live migrator: a copy round
                          stalls; the stall time dirties pages
``host.crash``            whole cluster host fails (recovered by failover;
                          the ResilienceController polls it *between*
                          evacuation moves, so failovers can cascade)
``vcpu.stall``            hypervisor-layer wedge: the vCPU stops retiring
                          instructions (detected by the guest-progress
                          watchdog, recovered by micro-reboot)
``overcommit.scan_stall`` pressure controller's periodic page-sharing scan
                          stalls this tick (skipped; reclaim falls behind
                          until the next scheduled scan)
``overcommit.balloon_refuse``  a guest balloon driver refuses the inflate
                          request this tick; the controller retries next
                          tick and leans on swap in the meantime
``irq.lost``              a PIC line raise is dropped on the wire: no
                          pending bit latches, the CPU never sees it
``irq.spurious``          the PIC asserts a device cause with no pending
                          line behind it; the handler's status read comes
                          back empty
``irq.storm``             a fired schedule event re-queues itself at the
                          next few consecutive retire edges (interrupt
                          storm on that line)
``irq.delayed``           a due schedule event is pushed back a drawn
                          number of retire edges before firing
``hmode.delegation_miss`` a delegated H-mode trap spuriously exits to the
                          VMM anyway (microarchitectural delegation miss);
                          the VMM re-injects, so only host timing changes
``hmode.gstage_stall``    a hardware two-stage walk stalls: extra cycles
                          charged on one combined-TLB miss
========================  ====================================================
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.util.errors import ConfigError
from repro.util.rng import DeterministicRNG

_MASK64 = (1 << 64) - 1


#: The central site registry. Seeded with every site the tree defines
#: today; subsystems adding injection points call :func:`register_site`.
_KNOWN_SITES: Dict[str, str] = {
    "block.io_error": "emulated disk completes a command with an I/O error",
    "block.stuck": "emulated disk wedges until reset()",
    "virtio.ring_stuck": "virtio device ignores kicks until reset",
    "link.drop": "in-flight transfer dies partway",
    "link.degrade": "transfer runs at a fraction of link bandwidth",
    "link.partition": "link goes down for partition_ticks",
    "migration.xfer_drop": "migration stream breaks mid-batch",
    "migration.page_corrupt": "page corrupted in flight",
    "migrate.link_drop": "DES pre-copy model: round transfer dies partway",
    "migrate.round_stall": "DES pre-copy model: a copy round stalls",
    "host.crash": "whole cluster host fails",
    "vcpu.stall": "vCPU stops retiring instructions",
    "overcommit.scan_stall": "page-sharing scan stalls this tick",
    "overcommit.balloon_refuse": "guest balloon driver refuses an inflate",
    "irq.lost": "PIC line raise dropped: no pending bit, CPU never sees it",
    "irq.spurious": "PIC asserts a device cause with no pending line behind it",
    "irq.storm": "schedule event re-queues at the next consecutive retire edges",
    "irq.delayed": "due schedule event pushed back a drawn number of edges",
    "hmode.delegation_miss": "delegated H-mode trap spuriously exits to the VMM",
    "hmode.gstage_stall": "hardware two-stage walk stalls on a TLB miss",
}


def register_site(site: str, description: str = "") -> None:
    """Declare a fault-injection site so plans may target it.

    Idempotent for an identical re-registration; re-registering with a
    *different* description is a likely copy-paste bug and rejected.
    """
    if not site:
        raise ConfigError("fault site name must be non-empty")
    existing = _KNOWN_SITES.get(site)
    if existing is not None and description and existing != description:
        raise ConfigError(
            f"fault site {site!r} already registered with a different "
            f"description"
        )
    if existing is None or description:
        _KNOWN_SITES[site] = description or existing or ""


def known_sites() -> Tuple[str, ...]:
    """All registered site names, sorted."""
    return tuple(sorted(_KNOWN_SITES))


def site_catalog() -> Tuple[Tuple[str, str], ...]:
    """Every registered site as ``(name, description)``, sorted by name.

    The ``repro faults --list`` CLI renders this so fault schedules can
    be authored without grepping the tree for register_site calls.
    """
    return tuple(sorted(_KNOWN_SITES.items()))


def _site_salt(site: str) -> int:
    """FNV-1a over the site name: a stable, process-independent salt.

    Python's builtin ``hash`` is randomized per process, which would
    destroy cross-run reproducibility of the per-site RNG forks.
    """
    h = 0xCBF29CE484222325
    for b in site.encode("utf-8"):
        h = ((h ^ b) * 0x100000001B3) & _MASK64
    return h


@dataclass(frozen=True)
class FaultSpec:
    """One site's fault behaviour.

    ``rate`` is the Bernoulli firing probability per opportunity;
    ``after`` opportunities are skipped first, and at most ``count``
    firings happen (None = unlimited). ``rate=1.0, after=K, count=1``
    pins exactly one fault at the (K+1)-th opportunity -- the idiom the
    acceptance tests use to place faults deterministically.
    """

    site: str
    rate: float = 0.0
    count: Optional[int] = None
    after: int = 0

    def validate(self) -> None:
        if not self.site:
            raise ConfigError("fault site name must be non-empty")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if self.count is not None and self.count < 0:
            raise ConfigError("fault count must be non-negative")
        if self.after < 0:
            raise ConfigError("fault 'after' must be non-negative")
        if self.site not in _KNOWN_SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; registered sites: "
                f"{', '.join(known_sites())} "
                f"(declare new ones with faults.injector.register_site)"
            )


@dataclass
class FaultPlan:
    """A seed plus one :class:`FaultSpec` per site."""

    seed: int = 1
    specs: List[FaultSpec] = field(default_factory=list)

    def validate(self) -> None:
        seen = set()
        for spec in self.specs:
            spec.validate()
            if spec.site in seen:
                raise ConfigError(f"duplicate fault spec for site {spec.site!r}")
            seen.add(spec.site)

    @classmethod
    def from_rates(cls, seed: int, rates: Dict[str, float]) -> "FaultPlan":
        """Convenience: uniform Bernoulli specs from a site -> rate map."""
        return cls(seed=seed,
                   specs=[FaultSpec(site, rate) for site, rate in rates.items()])

    def for_shard(self, shard_index: int) -> "FaultPlan":
        """The same plan with a shard-private derived seed.

        Sharded runs give every shard its own injector so fault
        schedules are a pure function of ``(plan, shard)`` -- one
        shard's fault opportunities never perturb another's stream,
        and results are independent of worker scheduling (the same
        discipline as the fuzz campaign's per-worker RNGs). The seed
        derivation goes through :meth:`DeterministicRNG.fork` so
        nearby shard indices still get unrelated streams.
        """
        if shard_index < 0:
            raise ConfigError("shard_index must be non-negative")
        return FaultPlan(
            seed=DeterministicRNG(self.seed).fork_seed(shard_index),
            specs=list(self.specs),
        )


class _SiteState:
    __slots__ = ("spec", "rng", "opportunities", "fired", "counter")

    def __init__(self, spec: FaultSpec, rng: DeterministicRNG):
        self.spec = spec
        self.rng = rng
        self.opportunities = 0
        self.fired = 0
        self.counter = None  # bound by the injector


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named injection points.

    Each site draws from its own forked RNG stream, so adding
    opportunities at one site never perturbs another's schedule. Every
    decision is appended to :attr:`trace`; :meth:`trace_bytes`
    serializes it for byte-for-byte reproducibility assertions.
    """

    def __init__(self, plan: FaultPlan, metrics=None):
        plan.validate()
        self.plan = plan
        #: ``faults.*`` scope: each firing counts under
        #: ``faults.injected.<site>`` plus the ``faults.injected.total``
        #: roll-up the run manifest always reports.
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("faults"))
        self._total = self.metrics.counter("injected.total")
        root = DeterministicRNG(plan.seed)
        self._sites: Dict[str, _SiteState] = {
            spec.site: _SiteState(spec, root.fork(_site_salt(spec.site)))
            for spec in plan.specs
        }
        for site, state in self._sites.items():
            state.counter = self.metrics.counter(f"injected.{site}")
        #: Every decision taken: (site, opportunity index, fired).
        self.trace: List[Tuple[str, int, bool]] = []

    def fires(self, site: str) -> bool:
        """Record one opportunity at ``site``; True when the fault fires."""
        state = self._sites.get(site)
        if state is None:
            return False  # unplanned site: never fires, never draws
        index = state.opportunities
        state.opportunities += 1
        fired = False
        if index >= state.spec.after and (
            state.spec.count is None or state.fired < state.spec.count
        ):
            fired = state.rng.random() < state.spec.rate
        if fired:
            state.fired += 1
            state.counter.inc()
            self._total.inc()
        self.trace.append((site, index, fired))
        return fired

    def uniform(self, site: str) -> float:
        """Auxiliary deterministic draw for fault magnitude at ``site``."""
        state = self._sites.get(site)
        if state is None:
            return 0.0
        return state.rng.random()

    def opportunities(self, site: str) -> int:
        state = self._sites.get(site)
        return state.opportunities if state is not None else 0

    def fired(self, site: str) -> int:
        state = self._sites.get(site)
        return state.fired if state is not None else 0

    def trace_bytes(self) -> bytes:
        """The decision log, serialized deterministically."""
        lines = [
            f"{site} {index} {int(fired)}" for site, index, fired in self.trace
        ]
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""

    def __repr__(self) -> str:
        fired = sum(1 for _s, _i, f in self.trace if f)
        return (f"<FaultInjector seed={self.plan.seed} sites={len(self._sites)} "
                f"decisions={len(self.trace)} fired={fired}>")
