"""NanoOS physical/virtual memory layout.

NanoOS identity-maps everything it owns (VA == guest-PA) except the
demand-paged user heap, which is a VA-only region backed by frames from
the kernel's pool (the pool itself is never mapped -- the kernel only
hands its frame addresses to the mapper). Identity mapping keeps the
assembly single-origin while still exercising every paging mechanism.

Map::

    0x0000_0000 .. 0x0001_0000   kernel image, stacks, diag/save pages
    0x0010_0000 .. 0x0018_0000   page directory + page-table bump region
    0x0020_0000 .. 0x0021_0000   user program (user RW)
    0x0027_0000 .. 0x0028_0000   user stack (user RW)
    0x0028_0000 .. 0x0028_2000   virtio rings (kernel RW)
    0x0029_0000 .. 0x002A_0000   DMA buffers (kernel RW)
    0x0030_0000 .. 0x0070_0000   frame pool (NOT mapped; 1024 frames)
    0x0070_0000 .. 0x00F0_0000   user heap (VA only, demand paged)
    top page                     PV shared-info page
"""

import enum

from repro.util.units import MIB, PAGE_SIZE


class GuestLayout:
    """Addresses shared between the kernel template and the host tooling."""

    # Kernel image.
    KERNEL_BASE = 0x0000_1000
    KERNEL_STACK_TOP = 0x0000_8000  # one page below DIAG

    # Diagnostic page, read back by the host after a run.
    DIAG = 0x0000_9000
    # Trap-time register save area (+ kernel bump-pointer words).
    SAVE = 0x0000_A000
    PT_BUMP_PTR = 0x0000_A800
    POOL_PTR = 0x0000_A804
    # PV batch cursor and a scratch slot for nested call returns.
    BATCH_CUR = 0x0000_A808
    LR_SAVE = 0x0000_A80C
    # PV page-table-update batch buffer (u32 pairs).
    BATCH_BUF = 0x0000_B000
    KERNEL_LOW_END = 0x0001_0000

    # Page directory and the page-table bump region.
    PD_BASE = 0x0010_0000
    PT_BUMP_START = 0x0010_1000
    PT_BUMP_END = 0x0018_0000

    # User program (identity-mapped, user-accessible).
    USER_BASE = 0x0020_0000
    USER_END = 0x0021_0000
    # User stack.
    USER_STACK_LOW = 0x0027_0000
    USER_STACK_TOP = 0x0028_0000

    # Virtio rings: blk queue page and net tx queue page.
    VQ_DESC = 0x0028_0000
    VQ_AVAIL = 0x0028_0100
    VQ_USED = 0x0028_0200
    VQ_HDRS = 0x0028_0300
    VQ_STATUS = 0x0028_0400
    VQ_NET_DESC = 0x0028_1000
    VQ_NET_AVAIL = 0x0028_1100
    VQ_NET_USED = 0x0028_1200
    VQ_END = 0x0028_2000
    QUEUE_SIZE = 16

    # DMA buffers.
    DMA_BUF = 0x0029_0000
    DMA_END = 0x002A_0000

    # Frame pool for demand paging (bump-allocated, deliberately unmapped).
    POOL_START = 0x0030_0000
    POOL_END = 0x0070_0000  # 1024 frames

    # Demand-paged user heap (VA-only region, up to 2048 pages).
    HEAP_BASE = 0x0070_0000
    HEAP_END = 0x00F0_0000

    #: Minimum guest memory for this layout (shared-info page above it).
    MIN_MEMORY = 16 * MIB

    @staticmethod
    def shared_info_gpa(memory_bytes: int) -> int:
        """gPA of the PV shared-info page (top page of guest RAM)."""
        return memory_bytes - PAGE_SIZE


class DiagField(enum.IntEnum):
    """Byte offsets into the diagnostic page."""

    MAGIC = 0  # 0x4F4E414E ("NANO") once the kernel booted
    BOOT_OK = 4  # 1 after paging + vectors are up
    MODE_OK = 8  # 1 = CSRR MODE returned kernel, 0 = violation, 2 = n/a
    IE_OK = 12  # 1 = STI then CSRR IE returned 1, 0 = violation, 2 = n/a
    TICKS = 16  # timer interrupts observed
    SYSCALLS = 20  # syscalls handled
    USER_RESULT = 24  # a0 passed to SYS_EXIT
    FAULT_CAUSE = 28  # nonzero = killed by an unexpected trap
    DEMAND_FAULTS = 32  # heap pages mapped on demand
    DEVICE_IRQS = 36  # device interrupts observed
    USER_DATA = 64  # workload-private scratch starts here


DIAG_MAGIC = 0x4F4E414E  # "NANO" little-endian
