"""The NanoOS kernel, generated as VISA assembly from one template.

``build_kernel(options)`` returns an assembled :class:`~repro.cpu.
assembler.Program` for the kernel image (loaded at ``KERNEL_BASE``).
Workload programs are assembled separately at ``USER_BASE`` (see
:mod:`repro.guest.workloads`); the kernel jumps to ``USER_BASE``
unconditionally after boot.

The single template covers both builds: ``pv=False`` emits privileged
instructions (an unmodified OS); ``pv=True`` emits hypercalls, batched
MMU updates, and shared-info-page reads instead.
"""

from dataclasses import dataclass, field

from repro.cpu.assembler import Assembler, Program
from repro.guest.layout import DIAG_MAGIC, DiagField, GuestLayout as L
from repro.util.units import MIB


class SysNum:
    """Syscall numbers (the guest ABI; arguments in a0/a1)."""

    EXIT = 0
    PUTC = 1
    YIELD = 2
    GETTICKS = 3
    MAP = 4  # a0 = heap VA to map
    UNMAP = 5  # a0 = heap VA to unmap
    MAP_BATCH = 6  # a0 = first heap VA, a1 = page count
    BLK_WRITE = 7  # a0 = sector, a1 = count (emulated disk)
    VBLK_WRITE_BATCH = 8  # a0 = base sector, a1 = requests (virtio, one kick)
    NET_SEND = 9  # a0 = frame length (emulated NIC)
    VNET_SEND_BATCH = 10  # a0 = frames of 64B (virtio, one kick)
    BLK_READ = 11  # a0 = sector, a1 = count (emulated disk)
    NET_RECV = 12  # pops one rx frame into DMA_BUF; returns its length


@dataclass
class KernelOptions:
    """Build-time knobs."""

    pv: bool = False
    #: Periodic timer period in cycles (0 = leave the timer off).
    timer_period: int = 0
    #: Emit the boot banner over the console port.
    banner: bool = True
    #: Run the sensitive-instruction correctness probes.
    probes: bool = True
    #: Configure the virtio queues at boot.
    virtio: bool = True
    #: Guest memory size (locates the PV shared-info page).
    memory_bytes: int = 16 * MIB


def asm_header() -> str:
    """``.equ`` block shared by the kernel and workload sources."""
    lines = []
    constants = {
        "KSTACK_TOP": L.KERNEL_STACK_TOP,
        "DIAG": L.DIAG,
        "SAVE": L.SAVE,
        "BATCH_BUF": L.BATCH_BUF,
        "BATCH_CUR": L.BATCH_CUR,
        "LR_SAVE": L.LR_SAVE,
        "KERNEL_LOW_END": L.KERNEL_LOW_END,
        "PD_BASE": L.PD_BASE,
        "PT_BUMP_START": L.PT_BUMP_START,
        "PT_BUMP_END": L.PT_BUMP_END,
        "PT_BUMP_PTR": L.PT_BUMP_PTR,
        "USER_BASE": L.USER_BASE,
        "USER_END": L.USER_END,
        "USER_STACK_LOW": L.USER_STACK_LOW,
        "USER_STACK_TOP": L.USER_STACK_TOP,
        "POOL_START": L.POOL_START,
        "POOL_END": L.POOL_END,
        "POOL_PTR": L.POOL_PTR,
        "HEAP_BASE": L.HEAP_BASE,
        "HEAP_END": L.HEAP_END,
        "VQ_DESC": L.VQ_DESC,
        "VQ_AVAIL": L.VQ_AVAIL,
        "VQ_USED": L.VQ_USED,
        "VQ_HDRS": L.VQ_HDRS,
        "VQ_STATUS": L.VQ_STATUS,
        "VQ_NET_DESC": L.VQ_NET_DESC,
        "VQ_NET_AVAIL": L.VQ_NET_AVAIL,
        "VQ_NET_USED": L.VQ_NET_USED,
        "VQ_END": L.VQ_END,
        "DMA_BUF": L.DMA_BUF,
        "DMA_END": L.DMA_END,
        "QUEUE_SIZE": L.QUEUE_SIZE,
        "DIAG_MAGIC": DIAG_MAGIC,
        "SYS_EXIT": SysNum.EXIT,
        "SYS_PUTC": SysNum.PUTC,
        "SYS_YIELD": SysNum.YIELD,
        "SYS_GETTICKS": SysNum.GETTICKS,
        "SYS_MAP": SysNum.MAP,
        "SYS_UNMAP": SysNum.UNMAP,
        "SYS_MAP_BATCH": SysNum.MAP_BATCH,
        "SYS_BLK_WRITE": SysNum.BLK_WRITE,
        "SYS_VBLK_WRITE_BATCH": SysNum.VBLK_WRITE_BATCH,
        "SYS_NET_SEND": SysNum.NET_SEND,
        "SYS_VNET_SEND_BATCH": SysNum.VNET_SEND_BATCH,
        "SYS_BLK_READ": SysNum.BLK_READ,
        "SYS_NET_RECV": SysNum.NET_RECV,
    }
    for name, value in constants.items():
        lines.append(f".equ {name}, {value:#x}" if value > 9 else f".equ {name}, {value}")
    return "\n".join(lines)


def build_kernel(options: KernelOptions = None) -> Program:
    """Assemble the NanoOS kernel image."""
    opts = options or KernelOptions()
    if opts.memory_bytes < L.MIN_MEMORY:
        raise ValueError(
            f"NanoOS layout needs at least {L.MIN_MEMORY} bytes of guest "
            f"memory, got {opts.memory_bytes}"
        )
    source = _kernel_source(opts)
    program = Assembler().assemble(source)
    # The image must stay clear of the kernel stack page at 0x7000.
    if L.KERNEL_BASE + program.size > L.KERNEL_STACK_TOP - 0x1000:
        raise AssertionError(
            f"kernel image of {program.size} bytes overruns its region"
        )
    return program


# --------------------------------------------------------------------------
# Template pieces. Each returns assembly text; {pv} decides variants.
# --------------------------------------------------------------------------


def _save_regs() -> str:
    # r1..r14 into SAVE + 4*reg; k0 (r15) is the kernel scratch register.
    lines = ["    li   k0, SAVE"]
    names = ["a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3",
             "s0", "s1", "s2", "fp", "sp", "lr"]
    for i, name in enumerate(names, start=1):
        lines.append(f"    st   [k0+{4 * i}], {name}")
    lines.append("    li   sp, KSTACK_TOP")
    return "\n".join(lines)


def _restore_regs_and_return(pv: bool) -> str:
    lines = ["trap_ret:", "    li   k0, SAVE"]
    names = ["a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3",
             "s0", "s1", "s2", "fp", "sp", "lr"]
    for i, name in enumerate(names, start=1):
        lines.append(f"    ld   {name}, [k0+{4 * i}]")
    lines.append("    vmcall 5" if pv else "    iret")
    return "\n".join(lines)


def _read_cause(pv: bool, shared: int) -> str:
    if pv:
        return f"    li   k0, {shared:#x}\n    ld   t0, [k0+4]"
    return "    csrr t0, ECAUSE"


def _read_eval(pv: bool, shared: int) -> str:
    if pv:
        return f"    li   k0, {shared:#x}\n    ld   t1, [k0+8]"
    return "    csrr t1, EVAL"


def _kernel_source(opts: KernelOptions) -> str:
    pv = opts.pv
    shared = L.shared_info_gpa(opts.memory_bytes)

    set_vbar = "    vmcall 1" if pv else "    csrw VBAR, a0"
    set_ptbr = "    vmcall 2" if pv else "    csrw PTBR, a0"

    if opts.probes and not pv:
        probes = """
    ; --- Popek-Goldberg probes (sensitive non-trapping instructions) ---
    ; CSRR MODE must read the *virtual* privilege (kernel = 0).
    csrr t0, MODE
    li   t1, DIAG
    li   t2, 0
    bnez t0, mode_probe_done      ; hardware leaked user mode: violation
    li   t2, 1
mode_probe_done:
    st   [t1+8], t2
    ; STI then CSRR IE must observe IE = 1.
    sti
    csrr t0, IE
    st   [t1+12], t0
    cli
"""
    else:
        probes = """
    ; PV build: probes not applicable (guest reads the shared-info page).
    li   t1, DIAG
    li   t2, 2
    st   [t1+8], t2
    st   [t1+12], t2
"""

    if opts.banner:
        banner = """
    li   t0, 78              ; 'N'
    out  0x10, t0
    li   t0, 10              ; newline
    out  0x10, t0
"""
    else:
        banner = ""

    if opts.timer_period > 0:
        timer = f"""
    li   t0, {opts.timer_period}
    out  0x40, t0            ; TIMER_PERIOD
    li   t0, 2
    out  0x41, t0            ; TIMER_CTRL: periodic
"""
    else:
        timer = ""

    if opts.virtio:
        virtio_init = """
    ; configure virtio-blk queue
    li   t0, VQ_DESC
    out  0x70, t0
    li   t0, VQ_AVAIL
    out  0x71, t0
    li   t0, VQ_USED
    out  0x72, t0
    li   t0, QUEUE_SIZE
    out  0x73, t0
    ; configure virtio-net tx queue
    li   t0, VQ_NET_DESC
    out  0x80, t0
    li   t0, VQ_NET_AVAIL
    out  0x81, t0
    li   t0, VQ_NET_USED
    out  0x82, t0
    li   t0, QUEUE_SIZE
    out  0x83, t0
"""
    else:
        virtio_init = ""

    # Runtime page-table update routines -----------------------------------
    if not pv:
        map_page_rt = """
; map_page_rt(a0 = page-aligned VA, a1 = page-aligned PA, a2 = flags)
; clobbers t0-t3. Direct stores: under shadow paging each store to a
; page-table page is a trapped, emulated write.
map_page_rt:
    shr  t0, a0, 22
    shl  t0, t0, 2
    li   t1, PD_BASE
    add  t0, t0, t1          ; &PDE
    ld   t1, [t0+0]
    and  t2, t1, 1
    bnez t2, mp_have_pt
    li   t2, PT_BUMP_PTR
    ld   t3, [t2+0]          ; fresh PT page
    add  t1, t3, 0           ; pt base
    or   t3, t3, 7           ; P|W|U
    st   [t0+0], t3
    ld   t3, [t2+0]
    add  t3, t3, 4096
    st   [t2+0], t3
    jmp  mp_pte
mp_have_pt:
    shr  t1, t1, 12
    shl  t1, t1, 12          ; pt base from PDE
mp_pte:
    shr  t2, a0, 12
    and  t2, t2, 0x3ff
    shl  t2, t2, 2
    add  t1, t1, t2          ; &PTE
    or   t2, a1, a2
    or   t2, t2, 1           ; P
    st   [t1+0], t2
    ret

; unmap_page_rt(a0 = page-aligned VA), clobbers t0-t2
unmap_page_rt:
    shr  t0, a0, 22
    shl  t0, t0, 2
    li   t1, PD_BASE
    add  t0, t0, t1
    ld   t1, [t0+0]
    and  t2, t1, 1
    beqz t2, ump_done        ; no PT: nothing mapped
    shr  t1, t1, 12
    shl  t1, t1, 12
    shr  t2, a0, 12
    and  t2, t2, 0x3ff
    shl  t2, t2, 2
    add  t1, t1, t2
    st   [t1+0], zero
    invlpg a0
ump_done:
    ret
"""
    else:
        map_page_rt = """
; PV page-table updates are queued (pt_queue) and issued as ONE
; MMU_BATCH hypercall (pt_flush) -- the Xen multicall pattern. The
; batch cursor lives at BATCH_CUR; the kernel is single-threaded.

; pt_queue(a0 = VA, a1 = PA, a2 = flags): append PDE (if a fresh page
; table is needed) and PTE updates to the batch. Clobbers t0-t3.
pt_queue:
    li   k0, BATCH_CUR
    ld   t3, [k0+0]          ; cursor
    shr  t0, a0, 22
    shl  t0, t0, 2
    li   t1, PD_BASE
    add  t0, t0, t1          ; &PDE
    ld   t1, [t0+0]
    and  t2, t1, 1
    bnez t2, pq_have_pt
    li   t2, PT_BUMP_PTR
    ld   t1, [t2+0]          ; fresh PT page (pa)
    st   [t3+0], t0          ; batch: write PDE
    or   t0, t1, 7
    st   [t3+4], t0
    add  t3, t3, 8
    add  t0, t1, 4096
    st   [t2+0], t0
    jmp  pq_pte
pq_have_pt:
    shr  t1, t1, 12
    shl  t1, t1, 12
pq_pte:
    shr  t2, a0, 12
    and  t2, t2, 0x3ff
    shl  t2, t2, 2
    add  t1, t1, t2          ; &PTE
    or   t2, a1, a2
    or   t2, t2, 1
    st   [t3+0], t1
    st   [t3+4], t2
    add  t3, t3, 8
    st   [k0+0], t3
    ret

; pt_flush: issue every queued update in one hypercall. Clobbers a0/a1.
pt_flush:
    li   k0, BATCH_CUR
    ld   a1, [k0+0]
    li   a0, BATCH_BUF
    sub  a1, a1, a0
    shr  a1, a1, 3           ; entry count
    beqz a1, ptf_done
    vmcall 3
    li   a0, BATCH_BUF
    st   [k0+0], a0          ; reset cursor
ptf_done:
    ret

; map_page_rt: queue one mapping and flush immediately (the unbatched
; path used by demand paging and SYS_MAP). Clobbers t0-t3, k0, a0/a1.
map_page_rt:
    li   k0, LR_SAVE
    st   [k0+0], lr
    call pt_queue
    call pt_flush
    li   k0, LR_SAVE
    ld   lr, [k0+0]
    ret

; unmap_page_rt (PV): one batch entry zeroing the PTE, then a TLB
; shootdown hypercall. (a0 = VA) clobbers t0-t2, s2.
unmap_page_rt:
    mov  s2, a0
    shr  t0, a0, 22
    shl  t0, t0, 2
    li   t1, PD_BASE
    add  t0, t0, t1
    ld   t1, [t0+0]
    and  t2, t1, 1
    beqz t2, pump_done
    shr  t1, t1, 12
    shl  t1, t1, 12
    shr  t2, a0, 12
    and  t2, t2, 0x3ff
    shl  t2, t2, 2
    add  t1, t1, t2          ; &PTE
    li   t0, BATCH_BUF
    st   [t0+0], t1
    st   [t0+4], zero
    li   a0, BATCH_BUF
    li   a1, 1
    vmcall 3
    mov  a0, s2
    vmcall 9                 ; INVLPG hypercall
pump_done:
    ret
"""

    # The boot-time mapper writes page tables with paging still off, so
    # it uses direct stores in both builds (no VMM to notify yet; the
    # shadow/PT machinery only engages once PTBR is installed).
    boot_map = """
; boot_map_range(a0 = first VA, a1 = last VA exclusive, a2 = flags)
; identity maps [a0, a1); direct stores (paging is still off).
; clobbers t0-t3, s0, s1
boot_map_range:
    mov  s0, a0
    mov  s1, a1
bmr_loop:
    bgeu s0, s1, bmr_done
    shr  t0, s0, 22
    shl  t0, t0, 2
    li   t1, PD_BASE
    add  t0, t0, t1
    ld   t1, [t0+0]
    and  t2, t1, 1
    bnez t2, bmr_have_pt
    li   t2, PT_BUMP_PTR
    ld   t3, [t2+0]
    or   t1, t3, 7
    st   [t0+0], t1
    ld   t1, [t2+0]
    add  t3, t1, 4096
    st   [t2+0], t3
    shl  t1, t1, 0           ; pt base already page aligned
    jmp  bmr_pte
bmr_have_pt:
    shr  t1, t1, 12
    shl  t1, t1, 12
bmr_pte:
    shr  t2, s0, 12
    and  t2, t2, 0x3ff
    shl  t2, t2, 2
    add  t1, t1, t2
    or   t2, s0, a2          ; identity: pa = va
    or   t2, t2, 1
    st   [t1+0], t2
    add  s0, s0, 4096
    jmp  bmr_loop
bmr_done:
    ret
"""

    shared_map = (
        f"""
    ; map the PV shared-info page (identity, kernel RW)
    li   a0, {shared:#x}
    li   a1, {shared + 0x1000:#x}
    li   a2, 2               ; kernel W
    call boot_map_range
"""
        if pv
        else ""
    )

    enter_user = f"""
    ; --- drop to user mode ---
    li   a0, USER_BASE
    csrw EPC, a0
    li   a0, 3               ; prior mode = user, prior IE = 1
    csrw ESTATUS, a0
    li   sp, USER_STACK_TOP
    {"vmcall 5" if pv else "iret"}
"""

    # Batched mapping: PV queues every PTE update and flushes once per
    # SYS_MAP_BATCH; HVM just stores per page (trapped under shadow).
    smb_call = "call pt_queue" if pv else "call map_page_rt"
    smb_flush = "call pt_flush" if pv else "nop"

    handler = f"""
; ===================== trap entry =====================
trap_entry:
{_save_regs()}
{_read_cause(pv, shared)}
    li   t1, 1
    beq  t0, t1, h_syscall
    li   t1, 7
    beq  t0, t1, h_timer
    li   t1, 8
    beq  t0, t1, h_device
    li   t1, 2
    beq  t0, t1, h_pf
    li   t1, 3
    beq  t0, t1, h_pf
    li   t1, 4
    beq  t0, t1, h_pf
    jmp  h_fatal

; --- timer interrupt ---
h_timer:
    li   t0, DIAG
    ld   t1, [t0+16]
    add  t1, t1, 1
    st   [t0+16], t1
    in   t1, 0x20            ; PIC status
    li   t2, 1
    out  0x20, t2            ; ack line 0
    jmp  trap_ret

; --- device interrupt ---
h_device:
    li   t0, DIAG
    ld   t1, [t0+36]
    add  t1, t1, 1
    st   [t0+36], t1
    in   t1, 0x20
    out  0x20, t1            ; ack everything pending
    jmp  trap_ret

; --- page fault: demand-page the user heap ---
h_pf:
{_read_eval(pv, shared)}
    li   t2, HEAP_BASE
    bltu t1, t2, h_fatal
    li   t2, HEAP_END
    bgeu t1, t2, h_fatal
    shr  a0, t1, 12
    shl  a0, a0, 12          ; page-aligned VA
    li   t2, POOL_PTR
    ld   a1, [t2+0]
    li   t3, POOL_END
    bgeu a1, t3, h_fatal     ; frame pool exhausted
    add  t3, a1, 4096
    st   [t2+0], t3
    li   a2, 6               ; user | writable
    call map_page_rt
    li   t0, DIAG
    ld   t1, [t0+32]
    add  t1, t1, 1
    st   [t0+32], t1
    jmp  trap_ret

; --- fatal: record and power off ---
h_fatal:
    li   t1, DIAG
    st   [t1+28], t0         ; cause
    li   t0, 2
    out  0xf0, t0            ; power off (code 2 = fault)
    hlt

; --- syscalls (number in EVAL, args in saved a0/a1) ---
h_syscall:
{_read_eval(pv, shared)}
    ; count every syscall
    li   t0, DIAG
    ld   t2, [t0+20]
    add  t2, t2, 1
    st   [t0+20], t2
    li   t0, SYS_EXIT
    beq  t1, t0, s_exit
    li   t0, SYS_PUTC
    beq  t1, t0, s_putc
    li   t0, SYS_YIELD
    beq  t1, t0, s_yield
    li   t0, SYS_GETTICKS
    beq  t1, t0, s_getticks
    li   t0, SYS_MAP
    beq  t1, t0, s_map
    li   t0, SYS_UNMAP
    beq  t1, t0, s_unmap
    li   t0, SYS_MAP_BATCH
    beq  t1, t0, s_map_batch
    li   t0, SYS_BLK_WRITE
    beq  t1, t0, s_blk_write
    li   t0, SYS_VBLK_WRITE_BATCH
    beq  t1, t0, s_vblk_batch
    li   t0, SYS_NET_SEND
    beq  t1, t0, s_net_send
    li   t0, SYS_VNET_SEND_BATCH
    beq  t1, t0, s_vnet_batch
    li   t0, SYS_BLK_READ
    beq  t1, t0, s_blk_read
    li   t0, SYS_NET_RECV
    beq  t1, t0, s_net_recv
    jmp  h_fatal             ; unknown syscall

s_exit:
    li   k0, SAVE
    ld   t1, [k0+4]          ; a0 = exit value
    li   t0, DIAG
    st   [t0+24], t1
    li   t0, 1
    out  0xf0, t0            ; power off (code 1 = clean exit)
    hlt

s_putc:
    li   k0, SAVE
    ld   t1, [k0+4]
    out  0x10, t1
    jmp  trap_ret

s_yield:
    jmp  trap_ret

s_getticks:
    li   t0, DIAG
    ld   t1, [t0+16]
    li   k0, SAVE
    st   [k0+4], t1          ; return in a0
    jmp  trap_ret

s_map:
    li   k0, SAVE
    ld   a0, [k0+4]          ; VA
    shr  a0, a0, 12
    shl  a0, a0, 12
    li   t2, POOL_PTR
    ld   a1, [t2+0]
    li   t3, POOL_END
    bgeu a1, t3, h_fatal
    add  t3, a1, 4096
    st   [t2+0], t3
    li   a2, 6
    call map_page_rt
    jmp  trap_ret

s_unmap:
    li   k0, SAVE
    ld   a0, [k0+4]
    shr  a0, a0, 12
    shl  a0, a0, 12
    call unmap_page_rt
    jmp  trap_ret

s_map_batch:
    li   k0, SAVE
    ld   s0, [k0+4]          ; first VA
    ld   s1, [k0+8]          ; page count
smb_loop:
    beqz s1, smb_done
    mov  a0, s0
    li   t2, POOL_PTR
    ld   a1, [t2+0]
    li   t3, POOL_END
    bgeu a1, t3, h_fatal
    add  t3, a1, 4096
    st   [t2+0], t3
    li   a2, 6
    {smb_call}
    add  s0, s0, 4096
    sub  s1, s1, 1
    jmp  smb_loop
smb_done:
    {smb_flush}
    jmp  trap_ret

; --- emulated block device: one request = 4 port writes + 1 read ---
s_blk_write:
    li   k0, SAVE
    ld   t1, [k0+4]          ; sector
    ld   t2, [k0+8]          ; count
    out  0x50, t1
    out  0x51, t2
    li   t3, DMA_BUF
    out  0x52, t3
    li   t3, 2               ; CMD_WRITE
    out  0x53, t3
    in   t3, 0x54            ; status
    st   [k0+4], t3
    jmp  trap_ret

s_blk_read:
    li   k0, SAVE
    ld   t1, [k0+4]
    ld   t2, [k0+8]
    out  0x50, t1
    out  0x51, t2
    li   t3, DMA_BUF
    out  0x52, t3
    li   t3, 1               ; CMD_READ
    out  0x53, t3
    in   t3, 0x54
    st   [k0+4], t3
    jmp  trap_ret

; --- virtio-blk: a0 = base sector, a1 = n single-sector writes,
;     3 descriptors per request, ONE kick for the whole batch ---
s_vblk_batch:
    li   k0, SAVE
    ld   s0, [k0+4]          ; base sector
    ld   s1, [k0+8]          ; n
    li   s2, 0               ; i
svb_loop:
    bgeu s2, s1, svb_kick
    ; header i at VQ_HDRS + 16*i : type=1(write), sector, count=1
    shl  t0, s2, 4
    li   t1, VQ_HDRS
    add  t0, t0, t1
    li   t1, 1
    st   [t0+0], t1          ; type = write
    add  t1, s0, s2
    st   [t0+4], t1          ; sector
    li   t1, 1
    st   [t0+8], t1          ; count
    ; descriptor base index d = 3*i
    mul  t1, s2, 3
    shl  t2, t1, 4           ; d*16
    li   t3, VQ_DESC
    add  t2, t2, t3          ; &desc[d]
    st   [t2+0], t0          ; addr = header
    li   t3, 12
    st   [t2+4], t3          ; len
    li   t3, 1               ; NEXT
    st   [t2+8], t3
    add  t3, t1, 1
    st   [t2+12], t3
    ; desc[d+1]: data
    add  t2, t2, 16
    li   t3, DMA_BUF
    st   [t2+0], t3
    li   t3, 512
    st   [t2+4], t3
    li   t3, 1
    st   [t2+8], t3
    add  t3, t1, 2
    st   [t2+12], t3
    ; desc[d+2]: status byte (device writes)
    add  t2, t2, 16
    li   t3, VQ_STATUS
    add  t3, t3, s2
    st   [t2+0], t3
    li   t3, 1
    st   [t2+4], t3
    li   t3, 2               ; WRITE
    st   [t2+8], t3
    st   [t2+12], zero
    ; avail.ring[(idx + i) % QUEUE_SIZE] = d
    li   t2, VQ_AVAIL
    ld   t3, [t2+0]          ; current idx
    add  t3, t3, s2
    and  t3, t3, 15
    shl  t3, t3, 2
    add  t3, t3, t2
    st   [t3+4], t1
    add  s2, s2, 1
    jmp  svb_loop
svb_kick:
    li   t2, VQ_AVAIL
    ld   t3, [t2+0]
    add  t3, t3, s1
    st   [t2+0], t3          ; publish idx
    out  0x74, t3            ; ONE kick for the whole batch
    st   [k0+4], zero        ; success
    jmp  trap_ret

; --- emulated NIC receive: pop one frame into DMA_BUF ---
s_net_recv:
    li   k0, SAVE
    li   t1, DMA_BUF
    out  0x64, t1            ; RX buffer address
    li   t1, 1
    out  0x65, t1            ; RX pop
    in   t1, 0x66            ; RX length (0 = queue empty)
    st   [k0+4], t1          ; return length in a0
    jmp  trap_ret

; --- emulated NIC: one frame = 3 port writes ---
s_net_send:
    li   k0, SAVE
    ld   t1, [k0+4]          ; length
    li   t2, DMA_BUF
    out  0x60, t2            ; TX addr
    out  0x61, t1            ; TX len
    li   t2, 1
    out  0x62, t2            ; TX go
    jmp  trap_ret

; --- virtio-net tx: a0 = n frames of 64 bytes, one kick ---
s_vnet_batch:
    li   k0, SAVE
    ld   s1, [k0+4]          ; n
    li   s2, 0
svn_loop:
    bgeu s2, s1, svn_kick
    shl  t2, s2, 4
    li   t3, VQ_NET_DESC
    add  t2, t2, t3          ; &desc[i]
    li   t3, DMA_BUF
    st   [t2+0], t3
    li   t3, 64
    st   [t2+4], t3
    st   [t2+8], zero        ; no flags: single read-only buffer
    st   [t2+12], zero
    li   t2, VQ_NET_AVAIL
    ld   t3, [t2+0]
    add  t3, t3, s2
    and  t3, t3, 15
    shl  t3, t3, 2
    add  t3, t3, t2
    st   [t3+4], s2
    add  s2, s2, 1
    jmp  svn_loop
svn_kick:
    li   t2, VQ_NET_AVAIL
    ld   t3, [t2+0]
    add  t3, t3, s1
    st   [t2+0], t3
    out  0x84, t3            ; tx queue kick
    st   [k0+4], zero
    jmp  trap_ret

{_restore_regs_and_return(pv)}
"""

    return f"""
.org 0x1000
{asm_header()}

start:
    li   sp, KSTACK_TOP
    ; announce
    li   t0, DIAG
    li   t1, DIAG_MAGIC
    st   [t0+0], t1
    ; init bump pointers
    li   t0, PT_BUMP_PTR
    li   t1, PT_BUMP_START
    st   [t0+0], t1
    li   t0, POOL_PTR
    li   t1, POOL_START
    st   [t0+0], t1
    li   t0, BATCH_CUR
    li   t1, BATCH_BUF
    st   [t0+0], t1
{banner}
    ; --- build page tables (identity) ---
    ; kernel image + low pages: kernel-only RW
    li   a0, 0
    li   a1, KERNEL_LOW_END
    li   a2, 2
    call boot_map_range
    ; page directory + page tables region: kernel RW
    li   a0, PD_BASE
    li   a1, PT_BUMP_END
    li   a2, 2
    call boot_map_range
    ; user program text/data: user RW
    li   a0, USER_BASE
    li   a1, USER_END
    li   a2, 6
    call boot_map_range
    ; user stack: user RW
    li   a0, USER_STACK_LOW
    li   a1, USER_STACK_TOP
    li   a2, 6
    call boot_map_range
    ; virtio rings: kernel RW (frame pool is deliberately unmapped)
    li   a0, VQ_DESC
    li   a1, VQ_END
    li   a2, 2
    call boot_map_range
    ; DMA buffers: kernel RW
    li   a0, DMA_BUF
    li   a1, DMA_END
    li   a2, 2
    call boot_map_range
{shared_map}
    ; --- install trap vector, enable paging ---
    li   a0, trap_entry
{set_vbar}
    li   a0, PD_BASE
{set_ptbr}
{probes}
    li   t0, DIAG
    li   t1, 1
    st   [t0+4], t1          ; boot_ok
{virtio_init}
{timer}
{enter_user}

{boot_map}
{map_page_rt}
{handler}
"""
