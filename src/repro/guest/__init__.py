"""NanoOS: the from-scratch guest operating system.

NanoOS is a complete (if small) kernel written in VISA assembly. It

* boots in kernel mode with paging off, builds 2-level page tables,
  installs its trap vector, and enables paging;
* runs correctness probes for the sensitive non-trapping instructions
  (the Popek-Goldberg violation detector of experiment E1);
* programs the interval timer and handles timer/device interrupts;
* demand-pages a user heap region (page faults map fresh frames);
* drops to user mode and runs a workload program that communicates
  through a syscall interface (exit, putc, yield, map/unmap, block and
  network I/O through both emulated and virtio drivers);
* reports everything through a diagnostic page the host reads back.

Two builds share one source template:

* **HVM** -- uses privileged instructions (CSRW, IRET, INVLPG, OUT/IN)
  exactly like an unmodified OS; runs native, trap-and-emulate,
  binary-translation, or hardware-assisted.
* **PV**  -- paravirtualized: privileged operations become hypercalls,
  page-table updates go through batched ``MMU_BATCH`` hypercalls, and
  the virtual IE / trap cause block is read from the shared-info page
  with plain loads (zero exits).
"""

from repro.guest.layout import GuestLayout, DiagField
from repro.guest.kernel import build_kernel, KernelOptions
from repro.guest import workloads
from repro.guest.loader import (
    boot_native,
    boot_vm,
    read_diag,
    DiagReport,
    MIN_GUEST_MEMORY,
)

__all__ = [
    "GuestLayout",
    "DiagField",
    "build_kernel",
    "KernelOptions",
    "workloads",
    "boot_native",
    "boot_vm",
    "read_diag",
    "DiagReport",
    "MIN_GUEST_MEMORY",
]
