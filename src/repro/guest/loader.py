"""Boot helpers and the diagnostic-page reader."""

from dataclasses import dataclass

from repro.core.hypervisor import Hypervisor, RunOutcome
from repro.core.machine import Machine, MachineOutcome
from repro.core.vm import VirtualMachine
from repro.cpu.assembler import Program
from repro.guest.layout import DIAG_MAGIC, DiagField, GuestLayout as L
from repro.util.errors import GuestError
from repro.util.units import MIB

#: Guest RAM the NanoOS layout requires.
MIN_GUEST_MEMORY = L.MIN_MEMORY


@dataclass(frozen=True)
class DiagReport:
    """Decoded diagnostic page."""

    magic_ok: bool
    boot_ok: bool
    mode_ok: int  # 1 ok, 0 violated, 2 n/a
    ie_ok: int
    ticks: int
    syscalls: int
    user_result: int
    fault_cause: int
    demand_faults: int
    device_irqs: int

    @property
    def clean(self) -> bool:
        """Booted, ran, exited without an unexpected trap."""
        return self.magic_ok and self.boot_ok and self.fault_cause == 0

    @property
    def correct_virtualization(self) -> bool:
        """No sensitive-instruction probe detected host-state leakage."""
        return self.mode_ok != 0 and self.ie_ok != 0


def read_diag(mem) -> DiagReport:
    """Decode the diagnostic page from any u32-readable memory view."""
    base = L.DIAG

    def field(f: DiagField) -> int:
        return mem.read_u32(base + int(f))

    return DiagReport(
        magic_ok=field(DiagField.MAGIC) == DIAG_MAGIC,
        boot_ok=field(DiagField.BOOT_OK) == 1,
        mode_ok=field(DiagField.MODE_OK),
        ie_ok=field(DiagField.IE_OK),
        ticks=field(DiagField.TICKS),
        syscalls=field(DiagField.SYSCALLS),
        user_result=field(DiagField.USER_RESULT),
        fault_cause=field(DiagField.FAULT_CAUSE),
        demand_faults=field(DiagField.DEMAND_FAULTS),
        device_irqs=field(DiagField.DEVICE_IRQS),
    )


def boot_native(
    machine: Machine,
    kernel: Program,
    workload: Program,
    max_instructions: int = 5_000_000,
) -> DiagReport:
    """Load and run NanoOS on bare metal; returns the diagnostics."""
    if machine.physmem.size < MIN_GUEST_MEMORY:
        raise GuestError(
            f"machine has {machine.physmem.size} bytes; NanoOS needs "
            f"{MIN_GUEST_MEMORY}"
        )
    machine.load_program(kernel)
    machine.load_program(workload)
    machine.cpu.reset(kernel.entry)
    outcome = machine.run(max_instructions=max_instructions)
    if outcome is MachineOutcome.INSTR_LIMIT:
        raise GuestError("native NanoOS run hit the instruction limit")
    return read_diag(machine.physmem)


def boot_vm(
    hypervisor: Hypervisor,
    vm: VirtualMachine,
    kernel: Program,
    workload: Program,
    max_guest_instructions: int = 5_000_000,
) -> DiagReport:
    """Load and run NanoOS inside a VM; returns the diagnostics."""
    if vm.guest_mem.size < MIN_GUEST_MEMORY:
        raise GuestError(
            f"VM {vm.name} has {vm.guest_mem.size} bytes; NanoOS needs "
            f"{MIN_GUEST_MEMORY}"
        )
    hypervisor.load_program(vm, kernel)
    hypervisor.load_program(vm, workload)
    hypervisor.reset_vcpu(vm, kernel.entry)
    outcome = hypervisor.run(vm, max_guest_instructions=max_guest_instructions)
    if outcome is RunOutcome.INSTR_LIMIT:
        raise GuestError(f"VM {vm.name} NanoOS run hit the instruction limit")
    return read_diag(vm.guest_mem)
