"""User-mode workload programs for NanoOS.

Each builder returns an assembled :class:`~repro.cpu.assembler.Program`
loaded at ``USER_BASE``. Workloads end with ``syscall SYS_EXIT`` and an
exit value (usually a checksum the host verifies), so every run is
self-validating: a virtualization mode that corrupts guest state
produces the wrong exit value, not just different timing.
"""

from repro.cpu.assembler import Assembler, Program
from repro.guest.kernel import asm_header
from repro.guest.layout import GuestLayout as L


def _assemble(body: str) -> Program:
    source = f"""
.org {L.USER_BASE:#x}
{asm_header()}
start:
{body}
"""
    program = Assembler().assemble(source)
    if program.size > L.USER_END - L.USER_BASE:
        raise AssertionError(f"workload of {program.size} bytes too large")
    return program


def cpu_bound(iterations: int = 20000) -> Program:
    """Pure integer arithmetic; zero kernel interaction after entry.

    Exit value: ``acc = (acc * 31 + i) mod 2^32`` folded over i.
    """
    return _assemble(f"""
    li   s0, {iterations}     ; i counts down
    li   s1, 0                ; acc
loop:
    mul  s1, s1, 31
    add  s1, s1, s0
    sub  s0, s0, 1
    bnez s0, loop
    mov  a0, s1
    syscall 0
""")


def expected_cpu_bound(iterations: int = 20000) -> int:
    """Host-side oracle for :func:`cpu_bound`'s exit value."""
    acc = 0
    for i in range(iterations, 0, -1):
        acc = (acc * 31 + i) & 0xFFFFFFFF
    return acc


def memtouch(pages: int = 64, passes: int = 4) -> Program:
    """Sequential stores over a heap working set.

    The first pass demand-faults every page (page-table update rate =
    page rate: the shadow-paging worst case); later passes re-dirty them
    (TLB/dirty behaviour). Exit value: sum of one word per page.
    """
    if not 1 <= pages <= 2048:
        raise ValueError("pages must be in 1..2048")
    return _assemble(f"""
    li   s0, {passes}
    li   s2, 0                ; checksum
pass_loop:
    li   s1, 0                ; page index
    li   t3, HEAP_BASE
page_loop:
    ; store page index + pass to the page, read it back
    st   [t3+0], s1
    ld   t0, [t3+0]
    add  s2, s2, t0
    add  t3, t3, 4096
    add  s1, s1, 1
    li   t0, {pages}
    bltu s1, t0, page_loop
    sub  s0, s0, 1
    bnez s0, pass_loop
    mov  a0, s2
    syscall 0
""")


def expected_memtouch(pages: int = 64, passes: int = 4) -> int:
    total_per_pass = sum(range(pages))
    return (total_per_pass * passes) & 0xFFFFFFFF


def random_walk(pages: int = 256, accesses: int = 20000, seed: int = 12345) -> Program:
    """Uniform random reads over a pre-touched working set (TLB stress).

    ``pages`` must be a power of two. Phase 1 touches every page
    sequentially (paying the demand faults up front); phase 2 performs
    ``accesses`` loads at LCG-generated page indices -- with a working
    set larger than the TLB this is a miss per access, making the
    nested-paging 2-D walk cost directly visible (experiment E3).
    """
    if pages & (pages - 1) or not 1 <= pages <= 2048:
        raise ValueError("pages must be a power of two in 1..2048")
    return _assemble(f"""
    ; phase 1: touch every page
    li   s1, 0
    li   t3, HEAP_BASE
touch_loop:
    st   [t3+0], s1
    add  t3, t3, 4096
    add  s1, s1, 1
    li   t0, {pages}
    bltu s1, t0, touch_loop
    ; phase 2: random reads
    li   s0, {accesses}
    li   s1, {seed}           ; LCG state
    li   s2, 0                ; checksum
walk_loop:
    mul  s1, s1, 1103515245
    add  s1, s1, 12345
    shr  t0, s1, 12
    and  t0, t0, {pages - 1}
    shl  t0, t0, 12
    li   t1, HEAP_BASE
    add  t0, t0, t1
    ld   t1, [t0+0]
    add  s2, s2, t1
    sub  s0, s0, 1
    bnez s0, walk_loop
    mov  a0, s2
    syscall 0
""")


def syscall_storm(count: int = 2000) -> Program:
    """Minimal syscalls in a tight loop: the guest-kernel-entry tax."""
    return _assemble(f"""
    li   s0, {count}
loop:
    syscall 2                 ; SYS_YIELD
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {count}
    syscall 0
""")


def pt_stress(cycles: int = 500) -> Program:
    """Map/unmap a page repeatedly: maximal page-table update rate.

    Each iteration is one SYS_MAP and one SYS_UNMAP of the same heap VA
    (plus the kernel's PTE stores and INVLPG). Shadow paging pays
    trapped PT writes; nested paging pays nothing; paravirt pays
    hypercalls.
    """
    va = L.HEAP_END - 0x1000  # keep clear of demand-paged working sets
    return _assemble(f"""
    li   s0, {cycles}
loop:
    li   a0, {va:#x}
    syscall 4                 ; SYS_MAP
    li   t0, {va:#x}
    st   [t0+0], s0           ; touch: the mapping must actually be used
    li   a0, {va:#x}
    syscall 5                 ; SYS_UNMAP
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {cycles}
    syscall 0
""")


def pt_mix(maps: int = 64, accesses: int = 4096, pages: int = 256,
           seed: int = 12345) -> Program:
    """Interleave page-table churn with TLB-thrashing reads (E11 sweep).

    The crossover workload: ``maps`` map/touch/unmap cycles (page-table
    modifications -- the shadow-paging tax) interleaved with
    ``accesses`` LCG-random reads over a pre-touched ``pages``-page
    working set (TLB misses -- the two-stage/nested walk tax). Sweeping
    ``maps`` against a fixed ``accesses`` moves the page-table
    modification rate from memory-intensity-dominated to churn-dominated,
    which is exactly the software-vs-hardware MMU crossover axis.

    Exit value: sum of the page indices read back plus ``maps``.
    """
    if pages & (pages - 1) or not 1 <= pages <= 2048:
        raise ValueError("pages must be a power of two in 1..2048")
    if maps < 1 or accesses < maps:
        raise ValueError("need maps >= 1 and accesses >= maps")
    inner = accesses // maps
    va = L.HEAP_END - 0x1000  # churn page, clear of the working set
    return _assemble(f"""
    ; phase 1: touch the working set (demand faults paid up front)
    li   s1, 0
    li   t3, HEAP_BASE
touch_loop:
    st   [t3+0], s1
    add  t3, t3, 4096
    add  s1, s1, 1
    li   t0, {pages}
    bltu s1, t0, touch_loop
    ; phase 2: interleaved churn + random reads
    li   s0, {maps}           ; outer: map/unmap cycles
    li   s1, {seed}           ; LCG state
    li   s2, 0                ; checksum
outer_loop:
    li   t3, {inner}          ; inner: random reads between churns
read_loop:
    mul  s1, s1, 1103515245
    add  s1, s1, 12345
    shr  t0, s1, 12
    and  t0, t0, {pages - 1}
    shl  t0, t0, 12
    li   t1, HEAP_BASE
    add  t0, t0, t1
    ld   t1, [t0+0]
    add  s2, s2, t1
    sub  t3, t3, 1
    bnez t3, read_loop
    li   a0, {va:#x}
    syscall 4                 ; SYS_MAP
    li   t0, {va:#x}
    st   [t0+0], s0           ; the mapping must actually be used
    li   a0, {va:#x}
    syscall 5                 ; SYS_UNMAP
    sub  s0, s0, 1
    bnez s0, outer_loop
    add  s2, s2, {maps}
    mov  a0, s2
    syscall 0
""")


def expected_pt_mix(maps: int = 64, accesses: int = 4096, pages: int = 256,
                    seed: int = 12345) -> int:
    """Host-side oracle for :func:`pt_mix`'s exit value."""
    inner = accesses // maps
    state = seed
    total = 0
    for _ in range(maps * inner):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        total += (state >> 12) & (pages - 1)
    return (total + maps) & 0xFFFFFFFF


def map_batch(batches: int = 32, batch_size: int = 8) -> Program:
    """Map heap pages in batches (PV MMU_BATCH amortization)."""
    total = batches * batch_size
    if total > 1024:
        raise ValueError("pool holds at most 1024 frames")
    return _assemble(f"""
    li   s0, {batches}
    li   s1, HEAP_BASE
loop:
    mov  a0, s1
    li   a1, {batch_size}
    syscall 6                 ; SYS_MAP_BATCH
    li   t0, {batch_size * 4096}
    add  s1, s1, t0
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {total}
    syscall 0
""")


def blk_write(requests: int = 64, sectors_per_request: int = 1) -> Program:
    """Sequential writes through the *emulated* disk (port-programmed)."""
    return _assemble(f"""
    li   s0, {requests}
    li   s1, 0                ; sector cursor
loop:
    mov  a0, s1
    li   a1, {sectors_per_request}
    syscall 7                 ; SYS_BLK_WRITE
    add  s1, s1, {sectors_per_request}
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {requests}
    syscall 0
""")


def vblk_write(batches: int = 16, batch_size: int = 4) -> Program:
    """Sequential writes through *virtio-blk*: one kick per batch."""
    if batch_size * 3 > L.QUEUE_SIZE:
        raise ValueError("batch needs 3 descriptors per request")
    return _assemble(f"""
    li   s0, {batches}
    li   s1, 0
loop:
    mov  a0, s1
    li   a1, {batch_size}
    syscall 8                 ; SYS_VBLK_WRITE_BATCH
    add  s1, s1, {batch_size}
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {batches * batch_size}
    syscall 0
""")


def net_send(frames: int = 64, length: int = 64) -> Program:
    """Frame sends through the *emulated* NIC (3 port writes each)."""
    return _assemble(f"""
    li   s0, {frames}
loop:
    li   a0, {length}
    syscall 9                 ; SYS_NET_SEND
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {frames}
    syscall 0
""")


def vnet_send(batches: int = 16, batch_size: int = 8) -> Program:
    """Frame sends through *virtio-net*: one kick per batch."""
    if batch_size > L.QUEUE_SIZE:
        raise ValueError("batch exceeds ring size")
    return _assemble(f"""
    li   s0, {batches}
loop:
    li   a0, {batch_size}
    syscall 10                ; SYS_VNET_SEND_BATCH
    sub  s0, s0, 1
    bnez s0, loop
    li   a0, {batches * batch_size}
    syscall 0
""")


def net_echo(frames: int = 4) -> Program:
    """Receive ``frames`` frames and echo each back (emulated NIC).

    Polls SYS_NET_RECV until a frame arrives, re-sends it at the same
    length, and exits with the total bytes received. The host injects
    the frames (before or during the run) and can compare the echoes.
    """
    return _assemble(f"""
    li   s0, {frames}
    li   s1, 0                ; total bytes
recv_loop:
    syscall 12                ; SYS_NET_RECV -> a0 = length (0 = none)
    beqz a0, recv_loop
    add  s1, s1, a0
    syscall 9                 ; SYS_NET_SEND of a0 bytes from DMA_BUF
    sub  s0, s0, 1
    bnez s0, recv_loop
    mov  a0, s1
    syscall 0
""")


def idle_ticks(ticks: int = 5) -> Program:
    """Spin on SYS_GETTICKS until the timer has fired ``ticks`` times."""
    return _assemble(f"""
loop:
    syscall 3                 ; SYS_GETTICKS -> a0
    li   t0, {ticks}
    bltu a0, t0, loop
    syscall 0                 ; exit with the tick count in a0
""")


def hello() -> Program:
    """Print "hi" over the console and exit with 42."""
    return _assemble("""
    li   a0, 104              ; 'h'
    syscall 1
    li   a0, 105              ; 'i'
    syscall 1
    li   a0, 10
    syscall 1
    li   a0, 42
    syscall 0
""")
