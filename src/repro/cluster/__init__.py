"""Multi-host consolidation and cluster management (experiment E8).

Models a fleet of physical hosts running many VMs:

* :mod:`repro.cluster.host` -- host/VM specifications and placements;
* :mod:`repro.cluster.placement` -- first-fit / best-fit / worst-fit
  vector bin packing (memory is a hard constraint, CPU oversubscribes)
  and a consolidation planner (first-fit decreasing);
* :mod:`repro.cluster.interference` -- per-host performance under CPU
  oversubscription: proportional-share throughput and queueing-style
  latency inflation, the source of the E8 knee at the consolidation
  ratio where demand crosses capacity;
* :mod:`repro.cluster.power` -- host power/energy/cost model and the
  consolidation-savings report;
* :mod:`repro.cluster.balancer` -- threshold-driven load balancing via
  live migrations costed by :mod:`repro.migration.model` over a shared
  management link;
* :mod:`repro.cluster.resilience` -- the failure-domain-aware control
  plane (experiment E10): anti-affinity/N+1-constrained placement and
  the detect→evacuate→re-place→verify loop that survives cascading
  host crashes under continuous fault injection;
* :mod:`repro.cluster.coordinator` -- the scale-out path: hosts
  partitioned into shards with private clocks/RNGs/registries that
  advance concurrently between epoch barriers, where a coordinator
  runs the global decisions and per-shard manifests merge
  byte-reproducibly (experiment E8s).
"""

from repro.cluster.host import HostSpec, VMSpec, Host, HostSummary, Placement
from repro.cluster.coordinator import (
    ClusterSimConfig,
    ClusterSimReport,
    ShardState,
    run_sharded_cluster,
)
from repro.cluster.placement import (
    AdmissionError,
    ConstraintSet,
    EvacuationConfig,
    PlacementPolicy,
    RELAX_ORDER,
    FailoverReport,
    failover,
    first_fit,
    best_fit,
    worst_fit,
    place,
    plan_consolidation,
    reservation_satisfied,
)
from repro.cluster.resilience import ResilienceController, ResilienceReport
from repro.cluster.interference import host_performance, HostPerformance
from repro.cluster.power import PowerModel, ConsolidationSavings, consolidation_savings
from repro.cluster.balancer import (
    LoadBalancer,
    BalanceReport,
    RebalanceMove,
    plan_rebalance,
)
from repro.cluster.workgen import (
    DEFAULT_CATALOGUE,
    VMClass,
    fleet_summary,
    generate_fleet,
)

__all__ = [
    "HostSpec",
    "VMSpec",
    "Host",
    "HostSummary",
    "Placement",
    "ClusterSimConfig",
    "ClusterSimReport",
    "ShardState",
    "run_sharded_cluster",
    "AdmissionError",
    "ConstraintSet",
    "EvacuationConfig",
    "PlacementPolicy",
    "RELAX_ORDER",
    "FailoverReport",
    "ResilienceController",
    "ResilienceReport",
    "reservation_satisfied",
    "failover",
    "first_fit",
    "best_fit",
    "worst_fit",
    "place",
    "plan_consolidation",
    "host_performance",
    "HostPerformance",
    "PowerModel",
    "ConsolidationSavings",
    "consolidation_savings",
    "LoadBalancer",
    "BalanceReport",
    "RebalanceMove",
    "plan_rebalance",
    "VMClass",
    "DEFAULT_CATALOGUE",
    "generate_fleet",
    "fleet_summary",
]
