"""Threshold-driven load balancing via live migration.

When a host's CPU utilization exceeds the high watermark, the balancer
migrates its smallest relieving VM to the least-loaded host that stays
under the low watermark -- the standard DRS-style greedy heuristic.
Migrations are costed with the pre-copy model over a shared management
link, so concurrent rebalancing decisions queue on real bandwidth.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.host import Host, HostSummary, Placement, VMSpec
from repro.cluster.placement import ConstraintSet
from repro.migration.model import MigrationConfig, simulate_precopy
from repro.obs.clock import SimClock
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import ConfigError
from repro.util.units import MIB, PAGE_SIZE


@dataclass
class BalanceReport:
    """What one rebalancing pass did."""

    migrations: List[Tuple[str, str, str]] = field(default_factory=list)
    total_migration_time_us: int = 0
    total_downtime_us: int = 0
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0

    @property
    def migration_count(self) -> int:
        return len(self.migrations)


def _imbalance(placement: Placement) -> float:
    """Population standard deviation of per-host utilization."""
    utils = [h.cpu_utilization for h in placement.hosts]
    if not utils:
        return 0.0
    mean = sum(utils) / len(utils)
    return math.sqrt(sum((u - mean) ** 2 for u in utils) / len(utils))


class LoadBalancer:
    """Greedy migration-based rebalancer."""

    def __init__(
        self,
        link: NetworkLink,
        high_watermark: float = 0.85,
        low_watermark: float = 0.70,
        max_migrations: int = 32,
        dirty_rate_pps: float = 2000.0,
        constraints: Optional[ConstraintSet] = None,
        metrics=None,
    ):
        if not 0 < low_watermark <= high_watermark <= 1.5:
            raise ConfigError("watermarks must satisfy 0 < low <= high")
        self.link = link
        self.high = high_watermark
        self.low = low_watermark
        self.max_migrations = max_migrations
        self.dirty_rate_pps = dirty_rate_pps
        #: Anti-affinity constraints; unlike placement/failover the
        #: balancer never relaxes them -- rebalancing is an
        #: optimization, so a move that would break spread is skipped.
        self.constraints = constraints
        #: ``cluster.balancer.*``: passes, migrations, time moved.
        self.metrics = (metrics if metrics is not None else
                        MetricsRegistry(clock=SimClock(link.sim)).scope(
                            "cluster.balancer"))

    def rebalance(self, placement: Placement) -> BalanceReport:
        """Migrate VMs until no host exceeds the high watermark (or the
        migration budget runs out)."""
        report = BalanceReport(imbalance_before=_imbalance(placement))
        for _ in range(self.max_migrations):
            move = self._pick_move(placement)
            if move is None:
                break
            vm, source, target = move
            result = self._migrate(vm)
            source.remove(vm.name)
            target.place(vm)
            report.migrations.append((vm.name, source.name, target.name))
            report.total_migration_time_us += result.total_time_us
            report.total_downtime_us += result.downtime_us
        report.imbalance_after = _imbalance(placement)
        m = self.metrics
        m.counter("passes").inc()
        m.counter("migrations").inc(report.migration_count)
        m.counter("migration_time_us").inc(report.total_migration_time_us)
        m.counter("downtime_us").inc(report.total_downtime_us)
        return report

    # -- internals -------------------------------------------------------

    def _pick_move(
        self, placement: Placement
    ) -> Optional[Tuple[VMSpec, Host, Host]]:
        overloaded = [
            h
            for h in placement.hosts
            if h.vms and h.cpu_demand / h.spec.cpu_capacity > self.high
        ]
        if not overloaded:
            return None
        source = max(overloaded, key=lambda h: h.cpu_demand / h.spec.cpu_capacity)
        # Smallest VM whose departure brings the source under the mark.
        excess = source.cpu_demand - self.high * source.spec.cpu_capacity
        candidates = sorted(source.vms.values(), key=lambda v: v.cpu_demand)
        vm = next((v for v in candidates if v.cpu_demand >= excess), None)
        if vm is None:
            vm = candidates[-1]  # biggest we have; partial relief
        targets = [
            h
            for h in placement.hosts
            if h is not source
            and h.fits(vm)
            and (h.cpu_demand + vm.cpu_demand) / h.spec.cpu_capacity <= self.low
            and self._spread_ok(vm, h, placement)
        ]
        if not targets:
            return None
        target = min(targets, key=lambda h: h.cpu_demand / h.spec.cpu_capacity)
        return vm, source, target

    def _spread_ok(self, vm: VMSpec, target: Host,
                   placement: Placement) -> bool:
        """Strict (never-relaxed) anti-affinity check for one move."""
        if self.constraints is None:
            return True
        peers = self.constraints.peers_of(vm.name)
        if not peers:
            return True
        in_domain = sum(
            1
            for h in placement.hosts
            if h.alive and h.domain == target.domain
            for name in h.vms
            if name in peers
        )
        return in_domain < self.constraints.max_per_domain

    def _migrate(self, vm: VMSpec):
        cfg = MigrationConfig(
            vm_pages=max(1, vm.memory_bytes // PAGE_SIZE),
            dirty_rate_pps=self.dirty_rate_pps,
        )
        return simulate_precopy(cfg, self.link, metrics=self.metrics)


# -- coordinator-side planning over summaries --------------------------------


@dataclass(frozen=True)
class RebalanceMove:
    """One planned migration: move ``vm`` from ``src`` to ``dst`` host."""

    vm: VMSpec
    src: str
    dst: str
    src_shard: int
    dst_shard: int


class _WorkingHost:
    """Mutable per-host load the planner updates as it commits moves."""

    __slots__ = ("summary", "cpu_demand", "memory_free", "vms")

    def __init__(self, summary: HostSummary):
        self.summary = summary
        self.cpu_demand = summary.cpu_demand
        self.memory_free = summary.memory_free
        self.vms: Dict[str, VMSpec] = {vm.name: vm for vm in summary.vms}

    @property
    def utilization(self) -> float:
        return self.cpu_demand / self.summary.cpu_capacity


def plan_rebalance(summaries: Sequence[HostSummary],
                   high_watermark: float = 0.85,
                   low_watermark: float = 0.70,
                   max_moves: int = 8) -> List[RebalanceMove]:
    """The :meth:`LoadBalancer._pick_move` greedy, lifted to summaries.

    The sharded coordinator cannot touch live hosts, so it plans
    against :class:`HostSummary` snapshots at the epoch barrier and
    ships each move as a depart/arrive message pair. Moves are applied
    to a working copy as they are planned, so later picks see earlier
    decisions. Determinism: ties in the max/min selections resolve to
    the first candidate in ``summaries`` order, which callers keep in
    (shard, host index) order.
    """
    if not 0 < low_watermark <= high_watermark <= 1.5:
        raise ConfigError("watermarks must satisfy 0 < low <= high")
    hosts = [_WorkingHost(s) for s in summaries]
    moves: List[RebalanceMove] = []
    for _ in range(max_moves):
        overloaded = [h for h in hosts
                      if h.summary.alive and h.vms
                      and h.utilization > high_watermark]
        if not overloaded:
            break
        source = max(overloaded, key=lambda h: h.utilization)
        excess = (source.cpu_demand
                  - high_watermark * source.summary.cpu_capacity)
        candidates = sorted(source.vms.values(),
                            key=lambda v: (v.cpu_demand, v.name))
        vm = next((v for v in candidates if v.cpu_demand >= excess), None)
        if vm is None:
            vm = candidates[-1]  # biggest we have; partial relief
        targets = [
            h for h in hosts
            if h is not source
            and h.summary.alive
            and vm.memory_bytes <= h.memory_free
            and ((h.cpu_demand + vm.cpu_demand)
                 / h.summary.cpu_capacity) <= low_watermark
        ]
        if not targets:
            break
        target = min(targets, key=lambda h: h.utilization)
        del source.vms[vm.name]
        source.cpu_demand -= vm.cpu_demand
        source.memory_free += vm.memory_bytes
        target.vms[vm.name] = vm
        target.cpu_demand += vm.cpu_demand
        target.memory_free -= vm.memory_bytes
        moves.append(RebalanceMove(
            vm=vm, src=source.summary.name, dst=target.summary.name,
            src_shard=source.summary.shard, dst_shard=target.summary.shard))
    return moves
