"""Host and VM specifications, and placements of VMs onto hosts."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import ConfigError
from repro.util.units import GIB, MIB


@dataclass(frozen=True)
class HostSpec:
    """A physical machine type."""

    name: str = "host"
    cores: int = 4
    #: Normalized CPU capacity: 1.0 per core by convention.
    cpu_capacity: float = 4.0
    memory_bytes: int = 16 * GIB
    idle_watts: float = 120.0
    peak_watts: float = 280.0
    #: Failure domain (rack / power feed): hosts sharing a domain are
    #: assumed to fail together. Per-host override via ``Host(domain=)``.
    failure_domain: str = "fd0"

    def validate(self) -> None:
        if self.cores <= 0 or self.cpu_capacity <= 0:
            raise ConfigError("host needs positive CPU")
        if self.memory_bytes <= 0:
            raise ConfigError("host needs positive memory")
        if self.idle_watts < 0 or self.peak_watts < self.idle_watts:
            raise ConfigError("watts must satisfy 0 <= idle <= peak")


@dataclass(frozen=True)
class VMSpec:
    """One VM's resource demand."""

    name: str
    cpu_demand: float = 1.0  # in core-units
    memory_bytes: int = 2 * GIB
    #: True for latency-sensitive VMs (reported separately by E8).
    interactive: bool = False

    def validate(self) -> None:
        if self.cpu_demand < 0:
            raise ConfigError("cpu_demand must be non-negative")
        if self.memory_bytes <= 0:
            raise ConfigError("memory must be positive")


class Host:
    """A host instance holding placed VMs."""

    placements = counter_attr()
    crashes = counter_attr()

    def __init__(self, spec: HostSpec, index: int, metrics=None,
                 domain: Optional[str] = None):
        spec.validate()
        self.spec = spec
        self.index = index
        self.name = f"{spec.name}-{index}"
        #: Failure domain this host lives in; hosts of one shared spec
        #: can still land in different racks via the ``domain`` override.
        self.domain = domain if domain is not None else spec.failure_domain
        #: ``cluster.host.<name>.*``; pass a shared scope to aggregate a
        #: whole cluster into one registry.
        self.metrics = (metrics if metrics is not None else
                        MetricsRegistry().scope(f"cluster.host.{self.name}"))
        self.vms: Dict[str, VMSpec] = {}
        self.alive = True

    # -- failure model -------------------------------------------------------

    def fail(self) -> bool:
        """Whole-host crash: the host stops accepting placements.

        Idempotent: failing an already-dead host changes nothing and
        does not inflate the crash counter (cascade sweeps poll hosts
        repeatedly). Returns whether the host's state changed.

        Its VMs stay listed as stranded until
        :func:`repro.cluster.placement.failover` drains them onto
        survivors.
        """
        if not self.alive:
            return False
        self.alive = False
        self.crashes += 1
        return True

    def maybe_crash(self, injector) -> bool:
        """Evaluate the ``host.crash`` fault site; True if this host died."""
        if injector is not None and self.alive and injector.fires("host.crash"):
            self.fail()
            return True
        return False

    @property
    def memory_used(self) -> int:
        return sum(vm.memory_bytes for vm in self.vms.values())

    @property
    def memory_free(self) -> int:
        return self.spec.memory_bytes - self.memory_used

    @property
    def cpu_demand(self) -> float:
        return sum(vm.cpu_demand for vm in self.vms.values())

    @property
    def cpu_utilization(self) -> float:
        """Actual utilization: demand clipped at capacity, normalized."""
        return min(1.0, self.cpu_demand / self.spec.cpu_capacity)

    def fits(self, vm: VMSpec) -> bool:
        """Memory is the hard constraint; CPU may oversubscribe.

        A dead host fits nothing.
        """
        return self.alive and vm.memory_bytes <= self.memory_free

    def place(self, vm: VMSpec) -> None:
        if vm.name in self.vms:
            raise ConfigError(f"VM {vm.name} already on {self.name}")
        if not self.fits(vm):
            raise ConfigError(f"VM {vm.name} does not fit on {self.name}")
        self.vms[vm.name] = vm
        self.placements += 1

    def remove(self, name: str) -> VMSpec:
        try:
            return self.vms.pop(name)
        except KeyError:
            raise ConfigError(f"VM {name} not on {self.name}") from None

    def summary(self, shard: int = 0) -> "HostSummary":
        """A frozen, picklable snapshot for coordinator-side decisions.

        Sharded runs never ship live :class:`Host` objects across the
        epoch barrier (they drag their metrics scope, and hence the
        whole shard registry, along). The coordinator plans against
        summaries and sends its decisions back as messages.
        """
        return HostSummary(
            name=self.name,
            index=self.index,
            shard=shard,
            domain=self.domain,
            alive=self.alive,
            cpu_capacity=self.spec.cpu_capacity,
            memory_bytes=self.spec.memory_bytes,
            vms=tuple(self.vms[name] for name in sorted(self.vms)),
        )

    def __repr__(self) -> str:
        return (
            f"<Host {self.name} {len(self.vms)} VMs, "
            f"cpu {self.cpu_demand:.1f}/{self.spec.cpu_capacity}, "
            f"mem {self.memory_used / MIB:.0f}/{self.spec.memory_bytes / MIB:.0f} MiB>"
        )


@dataclass(frozen=True)
class HostSummary:
    """Coordinator-side view of one host at an epoch barrier.

    Carries everything the global decisions (admission, rebalancing,
    evacuation re-placement, N+1 checks) need -- capacity, liveness,
    failure domain, and the resident :class:`VMSpec` set -- and nothing
    that aliases shard state. VMs are listed in sorted-name order so
    two runs producing the same placement produce identical summaries.
    """

    name: str
    index: int
    shard: int
    domain: str
    alive: bool
    cpu_capacity: float
    memory_bytes: int
    vms: Tuple[VMSpec, ...] = ()

    @property
    def cpu_demand(self) -> float:
        return sum(vm.cpu_demand for vm in self.vms)

    @property
    def cpu_utilization(self) -> float:
        return min(1.0, self.cpu_demand / self.cpu_capacity)

    @property
    def memory_used(self) -> int:
        return sum(vm.memory_bytes for vm in self.vms)

    @property
    def memory_free(self) -> int:
        return self.memory_bytes - self.memory_used

    def fits(self, vm: VMSpec) -> bool:
        """Same contract as :meth:`Host.fits`: memory-hard, CPU-soft."""
        return self.alive and vm.memory_bytes <= self.memory_free


@dataclass
class Placement:
    """A full assignment of VMs to hosts."""

    hosts: List[Host] = field(default_factory=list)
    #: VM name -> relax level for placements that could not honor the
    #: strict anti-affinity constraints (see placement.RELAX_ORDER).
    relaxations: Dict[str, str] = field(default_factory=dict)

    @property
    def hosts_used(self) -> int:
        return sum(1 for h in self.hosts if h.vms)

    @property
    def total_vms(self) -> int:
        return sum(len(h.vms) for h in self.hosts)

    def host_of(self, vm_name: str) -> Optional[Host]:
        for host in self.hosts:
            if vm_name in host.vms:
                return host
        return None

    @property
    def domains(self) -> List[str]:
        """Sorted unique failure domains across all hosts."""
        return sorted({h.domain for h in self.hosts})

    def domain_of(self, vm_name: str) -> Optional[str]:
        host = self.host_of(vm_name)
        return host.domain if host is not None else None

    def utilization_stats(self) -> List[float]:
        return [h.cpu_utilization for h in self.hosts if h.vms]
