"""VM placement: bin packing, anti-affinity constraints, host failover.

Failure-domain awareness lives here. Every host carries a ``domain``
(rack) label; a :class:`ConstraintSet` expresses spread requirements
over those domains (anti-affinity groups, a per-domain cap) plus N+R
capacity reservation, and both initial placement (:func:`place` and
friends) and :func:`failover` re-placement honor them.

Constraints relax in a documented order when unsatisfiable
(:data:`RELAX_ORDER`): first the domain-granularity spread is dropped
to host-granularity (no two group members on one *host*), then
anti-affinity is dropped entirely -- liveness beats availability
headroom. Capacity reservation is admission control, not a preference:
it never relaxes, and a VM it refuses raises :class:`AdmissionError`
so callers can count rejections instead of silently overpacking.
"""

import enum
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, List, Mapping, Optional, Sequence, Tuple,
)

from repro.cluster.host import Host, HostSpec, Placement, VMSpec
from repro.faults.recovery import RetryPolicy
from repro.migration.model import MigrationConfig, simulate_precopy
from repro.sim.kernel import Simulator
from repro.sim.link import NetworkLink
from repro.util.errors import ConfigError
from repro.util.units import MIB, PAGE_SIZE


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


class AdmissionError(ConfigError):
    """Capacity reservation refused a placement (admission control)."""


#: Candidate selection per policy; candidates are pre-filtered by fits().
_CHOOSERS: Dict[
    PlacementPolicy, Callable[[VMSpec, List[Host]], Optional[Host]]
] = {
    PlacementPolicy.FIRST_FIT: lambda vm, cs: cs[0] if cs else None,
    PlacementPolicy.BEST_FIT: (
        lambda vm, cs: min(cs, key=lambda h: h.memory_free) if cs else None
    ),
    PlacementPolicy.WORST_FIT: (
        lambda vm, cs: max(cs, key=lambda h: h.memory_free) if cs else None
    ),
}

#: Relax ladder for anti-affinity, strictest first. Reservation is
#: *not* on the ladder: admission control refuses rather than relaxes.
RELAX_ORDER = ("domain-spread", "host-spread", "unconstrained")


@dataclass
class ConstraintSet:
    """Spread/anti-affinity constraints plus capacity reservation.

    ``anti_affinity_groups`` maps a group (service) name to the VM
    names that replicate it; members of one group spread across
    failure domains, at most ``max_per_domain`` of them per domain.
    ``reserve_failures`` is N+R admission control: a placement is
    admitted only if, afterwards, the fleet could still evacuate its
    ``reserve_failures`` most-loaded hosts into the remaining free
    memory (a capacity-level check; the exact bin packing of a real
    evacuation may still strand a straggler).
    """

    anti_affinity_groups: Mapping[str, Sequence[str]] = field(
        default_factory=dict
    )
    max_per_domain: int = 1
    reserve_failures: int = 0

    def __post_init__(self) -> None:
        if self.max_per_domain < 1:
            raise ConfigError("max_per_domain must be at least 1")
        if self.reserve_failures < 0:
            raise ConfigError("reserve_failures must be non-negative")
        self._group_of: Dict[str, str] = {}
        for group, members in self.anti_affinity_groups.items():
            for name in members:
                if name in self._group_of:
                    raise ConfigError(
                        f"VM {name} in two anti-affinity groups "
                        f"({self._group_of[name]} and {group})"
                    )
                self._group_of[name] = group

    def is_empty(self) -> bool:
        return not self.anti_affinity_groups and self.reserve_failures == 0

    def group_of(self, vm_name: str) -> Optional[str]:
        return self._group_of.get(vm_name)

    def peers_of(self, vm_name: str) -> frozenset:
        """Other members of ``vm_name``'s anti-affinity group."""
        group = self.group_of(vm_name)
        if group is None:
            return frozenset()
        return frozenset(self.anti_affinity_groups[group]) - {vm_name}


def reservation_satisfied(
    hosts: Sequence[Host],
    reserve: int,
    candidate: Optional[Host] = None,
    vm: Optional[VMSpec] = None,
) -> bool:
    """N+R capacity check, optionally with ``vm`` pre-placed on ``candidate``.

    True iff the free memory on the alive hosts *outside* the
    ``reserve`` most-loaded ones can absorb everything those
    most-loaded hosts currently run.
    """
    if reserve <= 0:
        return True
    alive = [h for h in hosts if h.alive]
    if reserve >= len(alive):
        return False  # nobody would be left to evacuate onto

    def used(h: Host) -> int:
        extra = vm.memory_bytes if (vm is not None and h is candidate) else 0
        return h.memory_used + extra

    doomed = sorted(alive, key=lambda h: (-used(h), h.index))[:reserve]
    spare = sum(h.spec.memory_bytes - used(h) for h in alive
                if h not in doomed)
    return spare >= sum(used(h) for h in doomed)


def _constrained_candidates(
    vm: VMSpec,
    hosts: Sequence[Host],
    constraints: ConstraintSet,
    level: int,
) -> List[Host]:
    """Hosts that fit ``vm`` at relax ``level`` (index into RELAX_ORDER)."""
    fits = [h for h in hosts if h.fits(vm)]
    peers = constraints.peers_of(vm.name)
    if peers and level < 2:
        if level == 0:
            census: Dict[str, int] = {}
            for h in hosts:
                if not h.alive:
                    continue  # a dead host's VMs are stranded, not running
                count = sum(1 for name in h.vms if name in peers)
                census[h.domain] = census.get(h.domain, 0) + count
            fits = [h for h in fits
                    if census.get(h.domain, 0) < constraints.max_per_domain]
        else:  # level 1: peers may share a domain but never a host
            fits = [h for h in fits if not peers.intersection(h.vms)]
    if constraints.reserve_failures > 0:
        fits = [h for h in fits
                if reservation_satisfied(hosts, constraints.reserve_failures,
                                         candidate=h, vm=vm)]
    return fits


def _choose_constrained(
    vm: VMSpec,
    hosts: Sequence[Host],
    choose: Callable[[VMSpec, List[Host]], Optional[Host]],
    constraints: ConstraintSet,
) -> Tuple[Optional[Host], str]:
    """Pick a host walking the relax ladder; returns (host, level name).

    Raises :class:`AdmissionError` when capacity reservation -- which
    never relaxes -- is the only thing standing between ``vm`` and a
    host that fits.
    """
    for level, name in enumerate(RELAX_ORDER):
        host = choose(vm, _constrained_candidates(vm, hosts, constraints,
                                                  level))
        if host is not None:
            return host, name
    if (constraints.reserve_failures > 0
            and any(h.fits(vm) for h in hosts)):
        raise AdmissionError(
            f"admission control (N+{constraints.reserve_failures} "
            f"reservation) refuses VM {vm.name}"
        )
    return None, RELAX_ORDER[-1]


def _place(
    vms: Sequence[VMSpec],
    hosts: List[Host],
    choose: Callable[[VMSpec, List[Host]], Optional[Host]],
    constraints: Optional[ConstraintSet] = None,
) -> Placement:
    relaxations: Dict[str, str] = {}
    for vm in vms:
        vm.validate()
        if constraints is None or constraints.is_empty():
            host = choose(vm, [h for h in hosts if h.fits(vm)])
        else:
            host, level = _choose_constrained(vm, hosts, choose, constraints)
            if host is not None and level != RELAX_ORDER[0]:
                relaxations[vm.name] = level
        if host is None:
            raise ConfigError(
                f"no host can fit VM {vm.name} "
                f"({vm.memory_bytes} bytes of memory)"
            )
        host.place(vm)
    return Placement(hosts=hosts, relaxations=relaxations)


def first_fit(
    vms: Sequence[VMSpec], hosts: List[Host],
    constraints: Optional[ConstraintSet] = None,
) -> Placement:
    """Place each VM on the first host with room."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.FIRST_FIT],
                  constraints)


def best_fit(
    vms: Sequence[VMSpec], hosts: List[Host],
    constraints: Optional[ConstraintSet] = None,
) -> Placement:
    """Tightest fit: the candidate with the least free memory left."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.BEST_FIT],
                  constraints)


def worst_fit(
    vms: Sequence[VMSpec], hosts: List[Host],
    constraints: Optional[ConstraintSet] = None,
) -> Placement:
    """Loosest fit: spread load onto the emptiest candidate."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.WORST_FIT],
                  constraints)


def place(
    vms: Sequence[VMSpec], hosts: List[Host], policy: PlacementPolicy,
    constraints: Optional[ConstraintSet] = None,
) -> Placement:
    """Dispatch by policy enum."""
    return _place(vms, hosts, _CHOOSERS[policy], constraints)


@dataclass
class EvacuationConfig:
    """Platform parameters pricing one failover pass's migrations.

    Every move in an ``evacuate=`` failover is charged through
    :func:`repro.migration.model.simulate_precopy` over one shared
    management link (moves serialize, as on a real management network);
    an injector threaded into the model can drop the stream
    (``migrate.link_drop``) or stall rounds (``migrate.round_stall``),
    and ``retry_policy`` bounds the backoff-resume attempts before a
    VM's evacuation is abandoned.
    """

    bandwidth_bytes_per_sec: float = 125 * MIB
    latency_us: int = 100
    dirty_rate_pps: float = 2000.0
    max_rounds: int = 12
    threshold_pages: int = 64
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)

    def make_link(self, injector=None, metrics=None) -> NetworkLink:
        sim = Simulator()
        return NetworkLink(sim, self.bandwidth_bytes_per_sec,
                           latency=self.latency_us, name="evacuation",
                           injector=injector, metrics=metrics)

    def migration_config(self, vm: VMSpec) -> MigrationConfig:
        return MigrationConfig(
            vm_pages=max(1, vm.memory_bytes // PAGE_SIZE),
            dirty_rate_pps=self.dirty_rate_pps,
            max_rounds=self.max_rounds,
            threshold_pages=self.threshold_pages,
        )


@dataclass
class FailoverReport:
    """Outcome of one failover pass over a placement."""

    failed_hosts: List[str] = field(default_factory=list)
    recovered: List[str] = field(default_factory=list)
    #: Full specs (not just names) of VMs no survivor could hold, so a
    #: controller can retry placement once capacity returns.
    lost: List[VMSpec] = field(default_factory=list)
    #: (vm, from_host, to_host) for every successful re-placement.
    moves: List[Tuple[str, str, str]] = field(default_factory=list)
    #: VM name -> relax level for constrained re-placements that had to
    #: fall down the ladder.
    relaxations: Dict[str, str] = field(default_factory=dict)
    #: Evacuation pricing (``evacuate=`` mode only; zero otherwise).
    evacuation_time_us: int = 0
    evacuation_downtime_us: int = 0
    evacuation_retries: int = 0
    evacuation_backoff_us: int = 0
    #: VMs whose evacuation exhausted its retry budget (also in lost).
    gave_up: List[str] = field(default_factory=list)

    @property
    def lost_names(self) -> List[str]:
        return [vm.name for vm in self.lost]


def failover(
    placement: Placement,
    policy: PlacementPolicy = PlacementPolicy.WORST_FIT,
    constraints: Optional[ConstraintSet] = None,
    evacuate: Optional[EvacuationConfig] = None,
    injector=None,
    metrics=None,
) -> FailoverReport:
    """Re-place every VM stranded on dead hosts onto the survivors.

    Stranded VMs are drained largest-first (better packing under
    pressure; name-ordered within a size tie, so the move sequence is
    deterministic). A VM no survivor can hold is reported in ``lost``
    with its full spec -- capacity exhaustion is a real outcome, not an
    exception: the caller decides whether lost VMs warrant paging an
    operator or spinning up hosts.

    With ``constraints``, re-placement walks the same relax ladder as
    initial placement (reservation is *not* enforced here: recovering a
    stranded VM always beats preserving headroom). With ``evacuate``,
    each move is priced through the pre-copy model -- under an
    ``injector``, moves can retry with backoff and, once the
    :class:`RetryPolicy` budget is spent, the VM is abandoned to
    ``lost`` (and ``gave_up``).
    """
    choose = _CHOOSERS[policy]
    replace_constraints = None
    if constraints is not None and constraints.anti_affinity_groups:
        # Reservation-free view: failover never refuses for headroom.
        replace_constraints = ConstraintSet(
            anti_affinity_groups=constraints.anti_affinity_groups,
            max_per_domain=constraints.max_per_domain,
        )
    link = evacuate.make_link(injector=injector) if evacuate else None
    report = FailoverReport(
        failed_hosts=[h.name for h in placement.hosts if not h.alive]
    )
    for host in placement.hosts:
        if host.alive or not host.vms:
            continue
        stranded = sorted(
            host.vms.values(),
            key=lambda v: (-v.memory_bytes, v.name),
        )
        for vm in stranded:
            host.remove(vm.name)
            if replace_constraints is None:
                candidates = [h for h in placement.hosts if h.fits(vm)]
                target = choose(vm, candidates)
                level = RELAX_ORDER[0]
            else:
                target, level = _choose_constrained(
                    vm, placement.hosts, choose, replace_constraints
                )
            if target is None:
                report.lost.append(vm)
                continue
            if evacuate is not None:
                result = simulate_precopy(
                    evacuate.migration_config(vm), link,
                    injector=injector,
                    retry_policy=evacuate.retry_policy,
                    metrics=metrics,
                )
                report.evacuation_time_us += result.total_time_us
                report.evacuation_downtime_us += result.downtime_us
                report.evacuation_retries += result.retries
                report.evacuation_backoff_us += result.backoff_us
                if result.gave_up:
                    report.gave_up.append(vm.name)
                    report.lost.append(vm)
                    continue
            target.place(vm)
            if level != RELAX_ORDER[0]:
                report.relaxations[vm.name] = level
            report.recovered.append(vm.name)
            report.moves.append((vm.name, host.name, target.name))
    if metrics is not None:
        metrics.counter("failovers").inc()
        metrics.counter("recovered").inc(len(report.recovered))
        metrics.counter("lost").inc(len(report.lost))
    return report


def plan_consolidation(
    vms: Sequence[VMSpec],
    host_spec: HostSpec,
    cpu_overcommit: float = 1.0,
) -> Placement:
    """Minimize hosts: first-fit decreasing by memory, opening hosts on
    demand. ``cpu_overcommit`` > 1 allows packing CPU demand beyond
    capacity (consolidation accepts some contention).
    """
    if cpu_overcommit <= 0:
        raise ConfigError("cpu_overcommit must be positive")
    ordered = sorted(vms, key=lambda v: v.memory_bytes, reverse=True)
    hosts: List[Host] = []
    for vm in ordered:
        vm.validate()
        target = None
        for host in hosts:
            if host.fits(vm) and (
                host.cpu_demand + vm.cpu_demand
                <= host.spec.cpu_capacity * cpu_overcommit
            ):
                target = host
                break
        if target is None:
            target = Host(host_spec, index=len(hosts))
            if not target.fits(vm):
                raise ConfigError(
                    f"VM {vm.name} larger than an empty {host_spec.name}"
                )
            hosts.append(target)
        target.place(vm)
    return Placement(hosts=hosts)
