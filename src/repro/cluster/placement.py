"""VM placement: bin-packing policies and the consolidation planner."""

import enum
from typing import Callable, List, Optional, Sequence

from repro.cluster.host import Host, HostSpec, Placement, VMSpec
from repro.util.errors import ConfigError


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


def _place(
    vms: Sequence[VMSpec],
    hosts: List[Host],
    choose: Callable[[VMSpec, List[Host]], Optional[Host]],
) -> Placement:
    for vm in vms:
        vm.validate()
        candidates = [h for h in hosts if h.fits(vm)]
        host = choose(vm, candidates)
        if host is None:
            raise ConfigError(
                f"no host can fit VM {vm.name} "
                f"({vm.memory_bytes} bytes of memory)"
            )
        host.place(vm)
    return Placement(hosts=hosts)


def first_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Place each VM on the first host with room."""
    return _place(vms, hosts, lambda vm, cs: cs[0] if cs else None)


def best_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Tightest fit: the candidate with the least free memory left."""
    return _place(
        vms,
        hosts,
        lambda vm, cs: min(cs, key=lambda h: h.memory_free) if cs else None,
    )


def worst_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Loosest fit: spread load onto the emptiest candidate."""
    return _place(
        vms,
        hosts,
        lambda vm, cs: max(cs, key=lambda h: h.memory_free) if cs else None,
    )


def place(
    vms: Sequence[VMSpec], hosts: List[Host], policy: PlacementPolicy
) -> Placement:
    """Dispatch by policy enum."""
    if policy is PlacementPolicy.FIRST_FIT:
        return first_fit(vms, hosts)
    if policy is PlacementPolicy.BEST_FIT:
        return best_fit(vms, hosts)
    return worst_fit(vms, hosts)


def plan_consolidation(
    vms: Sequence[VMSpec],
    host_spec: HostSpec,
    cpu_overcommit: float = 1.0,
) -> Placement:
    """Minimize hosts: first-fit decreasing by memory, opening hosts on
    demand. ``cpu_overcommit`` > 1 allows packing CPU demand beyond
    capacity (consolidation accepts some contention).
    """
    if cpu_overcommit <= 0:
        raise ConfigError("cpu_overcommit must be positive")
    ordered = sorted(vms, key=lambda v: v.memory_bytes, reverse=True)
    hosts: List[Host] = []
    for vm in ordered:
        vm.validate()
        target = None
        for host in hosts:
            if host.fits(vm) and (
                host.cpu_demand + vm.cpu_demand
                <= host.spec.cpu_capacity * cpu_overcommit
            ):
                target = host
                break
        if target is None:
            target = Host(host_spec, index=len(hosts))
            if not target.fits(vm):
                raise ConfigError(
                    f"VM {vm.name} larger than an empty {host_spec.name}"
                )
            hosts.append(target)
        target.place(vm)
    return Placement(hosts=hosts)
