"""VM placement: bin-packing policies, consolidation, host failover."""

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.host import Host, HostSpec, Placement, VMSpec
from repro.util.errors import ConfigError


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


#: Candidate selection per policy; candidates are pre-filtered by fits().
_CHOOSERS: Dict[
    PlacementPolicy, Callable[[VMSpec, List[Host]], Optional[Host]]
] = {
    PlacementPolicy.FIRST_FIT: lambda vm, cs: cs[0] if cs else None,
    PlacementPolicy.BEST_FIT: (
        lambda vm, cs: min(cs, key=lambda h: h.memory_free) if cs else None
    ),
    PlacementPolicy.WORST_FIT: (
        lambda vm, cs: max(cs, key=lambda h: h.memory_free) if cs else None
    ),
}


def _place(
    vms: Sequence[VMSpec],
    hosts: List[Host],
    choose: Callable[[VMSpec, List[Host]], Optional[Host]],
) -> Placement:
    for vm in vms:
        vm.validate()
        candidates = [h for h in hosts if h.fits(vm)]
        host = choose(vm, candidates)
        if host is None:
            raise ConfigError(
                f"no host can fit VM {vm.name} "
                f"({vm.memory_bytes} bytes of memory)"
            )
        host.place(vm)
    return Placement(hosts=hosts)


def first_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Place each VM on the first host with room."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.FIRST_FIT])


def best_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Tightest fit: the candidate with the least free memory left."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.BEST_FIT])


def worst_fit(vms: Sequence[VMSpec], hosts: List[Host]) -> Placement:
    """Loosest fit: spread load onto the emptiest candidate."""
    return _place(vms, hosts, _CHOOSERS[PlacementPolicy.WORST_FIT])


def place(
    vms: Sequence[VMSpec], hosts: List[Host], policy: PlacementPolicy
) -> Placement:
    """Dispatch by policy enum."""
    return _place(vms, hosts, _CHOOSERS[policy])


@dataclass
class FailoverReport:
    """Outcome of one failover pass over a placement."""

    failed_hosts: List[str] = field(default_factory=list)
    recovered: List[str] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)
    #: (vm, from_host, to_host) for every successful re-placement.
    moves: List[Tuple[str, str, str]] = field(default_factory=list)


def failover(
    placement: Placement,
    policy: PlacementPolicy = PlacementPolicy.WORST_FIT,
) -> FailoverReport:
    """Re-place every VM stranded on dead hosts onto the survivors.

    Stranded VMs are drained largest-first (better packing under
    pressure). A VM no survivor can hold is reported in ``lost`` --
    capacity exhaustion is a real outcome, not an exception: the caller
    decides whether lost VMs warrant paging an operator or spinning up
    hosts.
    """
    choose = _CHOOSERS[policy]
    report = FailoverReport(
        failed_hosts=[h.name for h in placement.hosts if not h.alive]
    )
    for host in placement.hosts:
        if host.alive or not host.vms:
            continue
        stranded = sorted(
            host.vms.values(), key=lambda v: v.memory_bytes, reverse=True
        )
        for vm in stranded:
            host.remove(vm.name)
            candidates = [h for h in placement.hosts if h.fits(vm)]
            target = choose(vm, candidates)
            if target is None:
                report.lost.append(vm.name)
                continue
            target.place(vm)
            report.recovered.append(vm.name)
            report.moves.append((vm.name, host.name, target.name))
    return report


def plan_consolidation(
    vms: Sequence[VMSpec],
    host_spec: HostSpec,
    cpu_overcommit: float = 1.0,
) -> Placement:
    """Minimize hosts: first-fit decreasing by memory, opening hosts on
    demand. ``cpu_overcommit`` > 1 allows packing CPU demand beyond
    capacity (consolidation accepts some contention).
    """
    if cpu_overcommit <= 0:
        raise ConfigError("cpu_overcommit must be positive")
    ordered = sorted(vms, key=lambda v: v.memory_bytes, reverse=True)
    hosts: List[Host] = []
    for vm in ordered:
        vm.validate()
        target = None
        for host in hosts:
            if host.fits(vm) and (
                host.cpu_demand + vm.cpu_demand
                <= host.spec.cpu_capacity * cpu_overcommit
            ):
                target = host
                break
        if target is None:
            target = Host(host_spec, index=len(hosts))
            if not target.fits(vm):
                raise ConfigError(
                    f"VM {vm.name} larger than an empty {host_spec.name}"
                )
            hosts.append(target)
        target.place(vm)
    return Placement(hosts=hosts)
