"""Sharded cluster simulation: shard-local epochs, coordinator barriers.

This is the scale-out path for the cluster experiments. Hosts are
partitioned into :class:`ShardState` shards; each shard owns a private
clock, a private RNG stream forked from the run seed, a private fault
injector (seeded via :meth:`FaultPlan.for_shard`), and a private
metrics registry. An epoch advances every shard independently --
demand jitter, crash polling, per-host performance evaluation -- so
shards fan out across worker processes via
:class:`repro.sim.shard.ShardExecutor`.

Everything global happens single-threaded at the **epoch barrier**:
the coordinator receives :class:`HostSummary` snapshots plus
evacuation requests from crashed hosts, and runs re-placement,
DRS-style rebalancing (:func:`repro.cluster.balancer.plan_rebalance`),
admission control with a summary-level N+1 reserve check, and a
consolidation lower-bound estimate. Its decisions return to the
shards as ``depart``/``arrive`` :class:`ShardMessage` deliveries at
the *next* barrier.

Determinism contract (tested in ``tests/test_cluster_sharded.py``):

* the epoch step is a pure function of ``(shard state, epoch, inbox)``,
  so worker scheduling cannot leak into results -- for a fixed shard
  count the merged manifest is byte-identical for ``jobs=1`` and
  ``jobs=N``;
* ``shards=1`` runs the identical code inline with one shard and
  reproduces the single-process results exactly;
* changing the shard *count* legitimately changes results (it
  repartitions RNG streams and fault plans), exactly as changing a
  seed would.

At run end each shard's registry becomes a *partial* manifest
(histograms carry raw samples) and the coordinator reduces them with
:func:`repro.obs.manifest.merge_manifests` -- counters add, gauges
take the max, histogram samples concatenate -- then finalizes and
serializes canonically, so the merged manifest bytes depend only on
the configuration and seed.
"""

import hashlib
import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.balancer import plan_rebalance
from repro.cluster.host import Host, HostSpec, HostSummary, VMSpec
from repro.cluster.interference import host_performance
from repro.cluster.placement import first_fit
from repro.cluster.workgen import DEFAULT_CATALOGUE, VMClass, generate_fleet
from repro.faults.injector import FaultInjector, FaultPlan
from repro.obs.clock import ManualClock
from repro.obs.manifest import (
    build_manifest,
    finalize_manifest,
    manifest_bytes,
    merge_manifests,
    register_baseline,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.shard import (
    COORDINATOR,
    ShardExecutor,
    ShardMessage,
    route_messages,
)
from repro.util.errors import ConfigError
from repro.util.rng import DeterministicRNG
from repro.util.units import GIB

__all__ = [
    "ClusterSimConfig",
    "ClusterSimReport",
    "ShardState",
    "run_cluster_shard_epoch",
    "run_sharded_cluster",
]

#: Default host for sharded runs: a 16-core/64 GiB blade.
DEFAULT_HOST_SPEC = HostSpec(
    name="blade", cores=16, cpu_capacity=16.0, memory_bytes=64 * GIB)


@dataclass(frozen=True)
class ClusterSimConfig:
    """Everything a sharded cluster run is a pure function of."""

    fleet_size: int = 200
    shards: int = 4
    epochs: int = 6
    seed: int = 1
    #: Simulated length of one epoch (the barrier cadence).
    epoch_us: int = 1_000_000
    host_spec: HostSpec = DEFAULT_HOST_SPEC
    #: Provisioned memory slack over the fleet's aggregate demand; sets
    #: the host count (rounded up to a multiple of ``shards``).
    memory_headroom: float = 1.35
    #: Per-epoch uniform demand wobble around each VM's nominal demand
    #: (non-compounding: always relative to the base, never the jittered
    #: value, so long runs do not drift).
    demand_jitter: float = 0.25
    virt_overhead: float = 0.05
    #: Per-opportunity host-crash probability (one opportunity per host
    #: per epoch); 0 disables fault injection entirely.
    crash_rate: float = 0.0
    #: New VMs submitted to admission control at every barrier.
    arrivals_per_epoch: int = 0
    balance: bool = True
    high_watermark: float = 0.85
    low_watermark: float = 0.70
    max_moves_per_epoch: int = 8
    #: Barrier cadence of the consolidation lower-bound estimate.
    consolidation_every: int = 2
    cpu_overcommit: float = 1.5
    #: Summary-level N+R admission reserve (0 disables the check).
    reserve_failures: int = 1

    def validate(self) -> None:
        self.host_spec.validate()
        if self.fleet_size <= 0:
            raise ConfigError("fleet_size must be positive")
        if self.shards <= 0:
            raise ConfigError("shards must be positive")
        if self.epochs <= 0:
            raise ConfigError("epochs must be positive")
        if self.epoch_us <= 0:
            raise ConfigError("epoch_us must be positive")
        if self.memory_headroom < 1.0:
            raise ConfigError("memory_headroom must be >= 1")
        if not 0.0 <= self.demand_jitter < 1.0:
            raise ConfigError("demand_jitter must be in [0, 1)")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ConfigError("crash_rate must be in [0, 1]")
        if self.arrivals_per_epoch < 0:
            raise ConfigError("arrivals_per_epoch must be non-negative")
        if not 0 < self.low_watermark <= self.high_watermark:
            raise ConfigError("watermarks must satisfy 0 < low <= high")
        if self.consolidation_every <= 0:
            raise ConfigError("consolidation_every must be positive")
        if self.cpu_overcommit <= 0:
            raise ConfigError("cpu_overcommit must be positive")
        if self.reserve_failures < 0:
            raise ConfigError("reserve_failures must be non-negative")

    def describe(self) -> Dict[str, object]:
        """JSON-safe config block for the manifest's ``extra``."""
        return {
            "fleet_size": self.fleet_size,
            "shards": self.shards,
            "epochs": self.epochs,
            "seed": self.seed,
            "epoch_us": self.epoch_us,
            "host": {
                "name": self.host_spec.name,
                "cores": self.host_spec.cores,
                "memory_gib": self.host_spec.memory_bytes / GIB,
            },
            "demand_jitter": self.demand_jitter,
            "crash_rate": self.crash_rate,
            "arrivals_per_epoch": self.arrivals_per_epoch,
            "balance": self.balance,
        }


class ShardState:
    """One shard's private world; pickled whole across epoch fan-outs.

    The hosts, their metrics scopes, the registry, the RNG, and the
    injector travel as one pickle graph, so shared-object identity
    (every host scope writes the same registry) survives the process
    boundary. Nothing in here may reference another shard.
    """

    def __init__(self, shard_id: int, hosts: List[Host],
                 registry: MetricsRegistry, rng: DeterministicRNG,
                 injector: Optional[FaultInjector],
                 epoch_us: int, demand_jitter: float, virt_overhead: float):
        self.shard_id = shard_id
        self.hosts = hosts
        self.registry = registry
        self.rng = rng
        self.injector = injector
        self.epoch_us = epoch_us
        self.demand_jitter = demand_jitter
        self.virt_overhead = virt_overhead
        #: VM name -> nominal demand the jitter wobbles around.
        self.base_demand: Dict[str, float] = {
            vm.name: vm.cpu_demand
            for host in hosts for vm in host.vms.values()
        }
        #: Next outgoing message sequence number (monotonic per shard).
        self.seq = 0
        self.scope = registry.scope(f"cluster.shard.{shard_id:03d}")

    def _host_by_name(self, name: str) -> Optional[Host]:
        for host in self.hosts:
            if host.name == name:
                return host
        return None

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


def run_cluster_shard_epoch(task) -> Tuple["ShardState",
                                           List[HostSummary],
                                           List[ShardMessage]]:
    """Advance one shard one epoch. Pure in ``(state, epoch, inbox)``.

    Runs as the worker-side function of the epoch fan-out; the caller
    replaces its state with the returned one, so in-place mutation
    here is invisible to other shards and to the coordinator.

    Epoch order (each stage iterates hosts in list order and VMs in
    sorted-name order, so the RNG consumption sequence is fixed):

    1. apply inbox messages (``arrive``/``depart``) in delivery order;
    2. wobble every resident VM's demand around its nominal value;
    3. poll the ``host.crash`` fault site per host; crashed hosts
       strand their VMs, which leave as ``evac`` messages to the
       coordinator;
    4. evaluate per-host performance (throughput, interactive latency
       inflation) into the shard registry;
    5. advance the shard clock to the epoch end and snapshot host
       summaries for the coordinator.
    """
    state, epoch, inbox = task
    t1 = (epoch + 1) * state.epoch_us
    scope = state.scope
    out: List[ShardMessage] = []

    for msg in inbox:
        if msg.kind == "arrive":
            vm, host_name = msg.payload
            host = state._host_by_name(host_name)
            if host is not None and host.fits(vm):
                host.place(vm)
                state.base_demand[vm.name] = vm.cpu_demand
                scope.counter("messages.arrived").inc()
            else:
                # Shards are inert between barriers, so a planned
                # arrival can only miss if its target host is gone;
                # bounce the VM back for re-placement.
                scope.counter("messages.bounced").inc()
                out.append(ShardMessage(
                    time=t1, src_shard=state.shard_id, seq=state.next_seq(),
                    kind="evac", dst_shard=COORDINATOR,
                    payload=(vm, host_name)))
        elif msg.kind == "depart":
            vm_name, host_name = msg.payload
            host = state._host_by_name(host_name)
            if host is not None and vm_name in host.vms:
                host.remove(vm_name)
                state.base_demand.pop(vm_name, None)
                scope.counter("messages.departed").inc()
            else:
                scope.counter("messages.stale").inc()
        else:
            raise ConfigError(f"shard {state.shard_id} cannot handle "
                              f"message kind {msg.kind!r}")

    jitter = state.demand_jitter
    if jitter > 0.0:
        for host in state.hosts:
            if not host.alive:
                continue
            for name in sorted(host.vms):
                base = state.base_demand.get(name)
                if base is None:
                    continue
                factor = 1.0 + (state.rng.random() * 2.0 - 1.0) * jitter
                host.vms[name] = replace(host.vms[name],
                                         cpu_demand=round(base * factor, 3))

    if state.injector is not None:
        for host in state.hosts:
            if host.maybe_crash(state.injector):
                scope.counter("crashes").inc()
                for name in sorted(host.vms):
                    vm = host.remove(name)
                    state.base_demand.pop(name, None)
                    out.append(ShardMessage(
                        time=t1, src_shard=state.shard_id,
                        seq=state.next_seq(), kind="evac",
                        dst_shard=COORDINATOR, payload=(vm, host.name)))

    aggregate = 0.0
    for host in state.hosts:
        if not host.alive or not host.vms:
            continue
        perf = host_performance(host, virt_overhead=state.virt_overhead)
        aggregate += perf.aggregate_throughput
        if perf.saturated:
            scope.counter("perf.saturated_host_epochs").inc()
        for name, factor in perf.latency_factor.items():
            if host.vms[name].interactive:
                scope.observe("latency.interactive", factor)

    state.registry.clock.set(t1)
    scope.gauge("throughput").set(round(aggregate, 6))
    scope.counter("epochs").inc()
    summaries = [host.summary(state.shard_id) for host in state.hosts]
    return state, summaries, out


# -- the coordinator ---------------------------------------------------------


class _BarrierHost:
    """Coordinator's working copy of one host between summary and plan."""

    __slots__ = ("name", "shard", "domain", "alive", "cpu_capacity",
                 "memory_bytes", "vms")

    def __init__(self, summary: HostSummary):
        self.name = summary.name
        self.shard = summary.shard
        self.domain = summary.domain
        self.alive = summary.alive
        self.cpu_capacity = summary.cpu_capacity
        self.memory_bytes = summary.memory_bytes
        self.vms: Dict[str, VMSpec] = {vm.name: vm for vm in summary.vms}

    @property
    def memory_used(self) -> int:
        return sum(vm.memory_bytes for vm in self.vms.values())

    @property
    def memory_free(self) -> int:
        return self.memory_bytes - self.memory_used

    @property
    def cpu_demand(self) -> float:
        return sum(vm.cpu_demand for vm in self.vms.values())

    def fits(self, vm: VMSpec) -> bool:
        return self.alive and vm.memory_bytes <= self.memory_free

    def summary(self) -> HostSummary:
        return HostSummary(
            name=self.name, index=0, shard=self.shard, domain=self.domain,
            alive=self.alive, cpu_capacity=self.cpu_capacity,
            memory_bytes=self.memory_bytes,
            vms=tuple(self.vms[n] for n in sorted(self.vms)))


def _reserve_satisfied(hosts: Sequence[_BarrierHost], reserve: int) -> bool:
    """Summary-level N+R: can the ``reserve`` most-loaded alive hosts
    evacuate into the free memory of the rest?"""
    alive = [h for h in hosts if h.alive]
    if reserve <= 0:
        return True
    if len(alive) <= reserve:
        return False
    doomed = sorted(alive, key=lambda h: (-h.memory_used, h.name))[:reserve]
    doomed_names = {h.name for h in doomed}
    needed = sum(h.memory_used for h in doomed)
    free = sum(h.memory_free for h in alive if h.name not in doomed_names)
    return needed <= free


@dataclass
class ClusterSimReport:
    """Outcome of one sharded run.

    ``manifest`` is the finalized merged manifest -- a pure function
    of the configuration, so its ``sha256`` is comparable across
    ``--jobs`` values. Wall-clock timing lives *outside* the manifest
    (``wall_s``) for exactly that reason.
    """

    config: ClusterSimConfig
    jobs: int
    manifest: Dict[str, object]
    sha256: str
    stats: Dict[str, object]
    wall_s: float = 0.0

    @property
    def bytes(self) -> bytes:
        return manifest_bytes(self.manifest)


def _build_shards(config: ClusterSimConfig) -> List[ShardState]:
    """Generate the fleet, provision hosts, and run initial placement.

    Runs in the parent before any fan-out. The fleet and the host
    count depend only on (fleet_size, seed, host_spec, headroom), so
    two runs with different shard counts provision identical hardware
    -- only the partition and the per-shard RNG streams differ.
    """
    fleet = generate_fleet(config.fleet_size, seed=config.seed)
    total_mem = sum(vm.memory_bytes for vm in fleet)
    host_count = max(
        config.shards,
        math.ceil(total_mem * config.memory_headroom
                  / config.host_spec.memory_bytes),
    )
    host_count = ((host_count + config.shards - 1)
                  // config.shards) * config.shards
    per_shard = host_count // config.shards

    root = DeterministicRNG(config.seed)
    plan = (FaultPlan.from_rates(config.seed,
                                 {"host.crash": config.crash_rate})
            if config.crash_rate > 0.0 else None)
    states: List[ShardState] = []
    all_hosts: List[Host] = []
    for shard_id in range(config.shards):
        registry = register_baseline(
            MetricsRegistry(clock=ManualClock(timebase="us")))
        injector = (FaultInjector(plan.for_shard(shard_id),
                                  metrics=registry.scope("faults"))
                    if plan is not None else None)
        hosts = []
        for i in range(per_shard):
            index = shard_id * per_shard + i
            name = f"{config.host_spec.name}-{index}"
            hosts.append(Host(
                config.host_spec, index,
                metrics=registry.scope(
                    f"cluster.shard.{shard_id:03d}.host.{name}")))
        all_hosts.extend(hosts)
        states.append(ShardState(
            shard_id=shard_id, hosts=hosts, registry=registry,
            rng=root.fork(0x5AA0 + shard_id),
            injector=injector, epoch_us=config.epoch_us,
            demand_jitter=config.demand_jitter,
            virt_overhead=config.virt_overhead))

    # Global initial placement across the whole fleet of hosts; the
    # resulting per-host VM sets land in the owning shard's registry.
    first_fit(fleet, all_hosts)
    for state in states:
        state.base_demand = {
            vm.name: vm.cpu_demand
            for host in state.hosts for vm in host.vms.values()
        }
    return states


def run_sharded_cluster(config: ClusterSimConfig, jobs: int = 1,
                        experiment: Optional[str] = None) -> ClusterSimReport:
    """Run the epoch-barrier loop and merge per-shard manifests."""
    config.validate()
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    started = _time.monotonic()
    states = _build_shards(config)
    shards = config.shards

    coord_registry = register_baseline(
        MetricsRegistry(clock=ManualClock(timebase="us")))
    coord = coord_registry.scope("cluster.coordinator")
    coord_rng = DeterministicRNG(config.seed).fork(0xC00D)
    coord_seq = 0
    pending_evac: List[VMSpec] = []
    messages_total = 0
    arrivals_index = 0

    inboxes: List[List[ShardMessage]] = [[] for _ in range(shards)]
    with ShardExecutor(jobs=jobs) as executor:
        for epoch in range(config.epochs):
            tasks = [(states[s], epoch, tuple(inboxes[s]))
                     for s in range(shards)]
            results = executor.map(run_cluster_shard_epoch, tasks)
            states = [r[0] for r in results]
            barrier_time = (epoch + 1) * config.epoch_us

            outgoing: List[ShardMessage] = []
            for _state, _summaries, msgs in results:
                outgoing.extend(msgs)
            _inboxes, evac_msgs = route_messages(outgoing, shards)
            # Shards never message each other directly today; every
            # shard-originated message is an evacuation to us.
            for shard_inbox in _inboxes:
                if shard_inbox:
                    raise ConfigError("unexpected direct shard-to-shard "
                                      "message")

            work: List[_BarrierHost] = []
            for result in results:
                work.extend(_BarrierHost(s) for s in result[1])
            by_name = {h.name: h for h in work}

            decisions: List[ShardMessage] = []

            def send(kind: str, dst_shard: int, payload: Tuple) -> None:
                nonlocal coord_seq
                coord_seq += 1
                decisions.append(ShardMessage(
                    time=barrier_time, src_shard=COORDINATOR,
                    seq=coord_seq, kind=kind, dst_shard=dst_shard,
                    payload=payload))

            # 1. Evacuation re-placement: stranded VMs (this barrier's
            # plus any still pending) go worst-fit onto survivors.
            stranded = pending_evac + [m.payload[0] for m in evac_msgs]
            pending_evac = []
            coord.counter("evac.requests").inc(len(evac_msgs))
            for vm in stranded:
                candidates = [h for h in work if h.fits(vm)]
                if candidates:
                    target = max(candidates,
                                 key=lambda h: (h.memory_free, h.name))
                    target.vms[vm.name] = vm
                    send("arrive", target.shard, (vm, target.name))
                    coord.counter("evac.replaced").inc()
                else:
                    pending_evac.append(vm)
                    coord.counter("evac.deferred").inc()

            # 2. Rebalancing: the DRS greedy over summaries; each move
            # becomes a depart/arrive pair delivered next epoch.
            if config.balance:
                moves = plan_rebalance(
                    [h.summary() for h in work],
                    high_watermark=config.high_watermark,
                    low_watermark=config.low_watermark,
                    max_moves=config.max_moves_per_epoch)
                for move in moves:
                    src, dst = by_name[move.src], by_name[move.dst]
                    del src.vms[move.vm.name]
                    dst.vms[move.vm.name] = move.vm
                    send("depart", move.src_shard, (move.vm.name, move.src))
                    send("arrive", move.dst_shard, (move.vm, move.dst))
                    coord.counter("balancer.moves").inc()
                    coord.counter("balancer.moved_bytes").inc(
                        move.vm.memory_bytes)

            # 3. Admission: new arrivals clear a summary-level N+R
            # reserve check before they are placed first-fit.
            for _ in range(config.arrivals_per_epoch):
                klass: VMClass = DEFAULT_CATALOGUE[
                    coord_rng.sample_zipf(len(DEFAULT_CATALOGUE))]
                vm = VMSpec(name=f"new-{arrivals_index:04d}",
                            cpu_demand=klass.cpu_demand,
                            memory_bytes=klass.memory_bytes,
                            interactive=klass.interactive)
                arrivals_index += 1
                target = next((h for h in work if h.fits(vm)), None)
                if target is None:
                    coord.counter("admission.rejected.capacity").inc()
                    continue
                target.vms[vm.name] = vm
                if not _reserve_satisfied(work, config.reserve_failures):
                    del target.vms[vm.name]
                    coord.counter("admission.rejected.reserve").inc()
                    continue
                send("arrive", target.shard, (vm, target.name))
                coord.counter("admission.accepted").inc()

            # 4. Consolidation floor: the cheap capacity lower bound
            # (FFD planning is O(V*H) -- far too hot for a 10k-VM
            # barrier; the bound is what the periodic report needs).
            if (epoch + 1) % config.consolidation_every == 0:
                vms = [vm for h in work for vm in h.vms.values()]
                if vms:
                    mem_lb = math.ceil(sum(v.memory_bytes for v in vms)
                                       / config.host_spec.memory_bytes)
                    cpu_lb = math.ceil(sum(v.cpu_demand for v in vms)
                                       / (config.host_spec.cpu_capacity
                                          * config.cpu_overcommit))
                    coord.gauge("consolidation.lower_bound_hosts").set(
                        max(mem_lb, cpu_lb))
                    coord.counter("consolidation.estimates").inc()

            messages_total += len(outgoing) + len(decisions)
            inboxes, leftover = route_messages(decisions, shards)
            if leftover:
                raise ConfigError("coordinator addressed itself")

    coord.counter("evac.unplaced_at_end").inc(len(pending_evac))
    coord_registry.clock.set(config.epochs * config.epoch_us)

    partials = [build_manifest(state.registry, experiment=experiment,
                               samples=True)
                for state in states]
    partials.append(build_manifest(
        coord_registry, experiment=experiment, samples=True,
        extra={"cluster_sharded": config.describe()}))
    manifest = finalize_manifest(merge_manifests(partials))
    payload = manifest_bytes(manifest)

    alive = sum(1 for s in states for h in s.hosts if h.alive)
    placed = sum(len(h.vms) for s in states for h in s.hosts)
    stats = {
        "hosts": sum(len(s.hosts) for s in states),
        "hosts_alive": alive,
        "vms_resident": placed,
        "messages": messages_total,
        "evac_unplaced": len(pending_evac),
    }
    return ClusterSimReport(
        config=config, jobs=jobs, manifest=manifest,
        sha256=hashlib.sha256(payload).hexdigest(), stats=stats,
        wall_s=_time.monotonic() - started)
