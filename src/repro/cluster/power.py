"""Host power, energy, and money: the consolidation-savings report."""

from dataclasses import dataclass
from typing import List

from repro.cluster.host import Host, Placement
from repro.util.errors import ConfigError

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class PowerModel:
    """Linear power model + electricity price.

    ``cooling_overhead`` is the PUE-style multiplier for the cooling
    energy spent per IT watt (1.6 means 0.6 W of cooling per watt).
    """

    price_per_kwh: float = 0.18
    cooling_overhead: float = 1.6

    def host_watts(self, host: Host) -> float:
        if not host.vms:
            return 0.0  # powered off
        spec = host.spec
        return spec.idle_watts + (
            spec.peak_watts - spec.idle_watts
        ) * host.cpu_utilization

    def placement_watts(self, placement: Placement) -> float:
        return sum(self.host_watts(h) for h in placement.hosts)

    def annual_cost(self, watts: float) -> float:
        kwh = watts * self.cooling_overhead * HOURS_PER_YEAR / 1000.0
        return kwh * self.price_per_kwh


@dataclass(frozen=True)
class ConsolidationSavings:
    """Before/after comparison of two placements."""

    hosts_before: int
    hosts_after: int
    watts_before: float
    watts_after: float
    annual_cost_before: float
    annual_cost_after: float

    @property
    def consolidation_ratio(self) -> float:
        if self.hosts_after == 0:
            raise ConfigError("consolidated placement uses no hosts")
        return self.hosts_before / self.hosts_after

    @property
    def annual_saving(self) -> float:
        return self.annual_cost_before - self.annual_cost_after

    @property
    def saving_per_retired_host(self) -> float:
        retired = self.hosts_before - self.hosts_after
        if retired <= 0:
            return 0.0
        return self.annual_saving / retired


def consolidation_savings(
    before: Placement, after: Placement, model: PowerModel = None
) -> ConsolidationSavings:
    """Compare power/cost of two placements of the same VMs."""
    if before.total_vms != after.total_vms:
        raise ConfigError(
            f"placements hold different VM counts "
            f"({before.total_vms} vs {after.total_vms})"
        )
    model = model or PowerModel()
    wb = model.placement_watts(before)
    wa = model.placement_watts(after)
    return ConsolidationSavings(
        hosts_before=before.hosts_used,
        hosts_after=after.hosts_used,
        watts_before=wb,
        watts_after=wa,
        annual_cost_before=model.annual_cost(wb),
        annual_cost_after=model.annual_cost(wa),
    )
