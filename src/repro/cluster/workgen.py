"""Synthetic fleet generation for cluster experiments.

Real fleets are heavy-tailed: a few large database VMs, a body of
medium application servers, and a long tail of small utility VMs.
The generator draws sizes from a Zipf-skewed catalogue through the
platform's deterministic RNG, so fleets are reproducible from a seed.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster.host import VMSpec
from repro.util.errors import ConfigError
from repro.util.rng import DeterministicRNG
from repro.util.units import GIB


@dataclass(frozen=True)
class VMClass:
    """One entry in the size catalogue."""

    name: str
    cpu_demand: float
    memory_bytes: int
    interactive: bool = False


#: Default catalogue, ordered hot-to-cold for the Zipf draw: the small
#: utility class is the most common, the big database box the rarest.
DEFAULT_CATALOGUE: Tuple[VMClass, ...] = (
    VMClass("util", cpu_demand=0.5, memory_bytes=1 * GIB),
    VMClass("web", cpu_demand=1.0, memory_bytes=2 * GIB, interactive=True),
    VMClass("app", cpu_demand=1.5, memory_bytes=4 * GIB),
    VMClass("cache", cpu_demand=1.0, memory_bytes=8 * GIB),
    VMClass("db", cpu_demand=3.0, memory_bytes=16 * GIB, interactive=True),
)


def generate_fleet(
    count: int,
    seed: int = 1,
    catalogue: Sequence[VMClass] = DEFAULT_CATALOGUE,
    skew: float = 1.0,
    jitter: float = 0.2,
) -> List[VMSpec]:
    """Generate ``count`` reproducible VM specs.

    ``skew`` is the Zipf exponent over the catalogue order; ``jitter``
    scales each VM's CPU demand uniformly in ``[1-jitter, 1+jitter]``
    so same-class VMs are not identical.
    """
    if count <= 0:
        raise ConfigError("count must be positive")
    if not catalogue:
        raise ConfigError("catalogue must not be empty")
    if not 0.0 <= jitter < 1.0:
        raise ConfigError("jitter must be in [0, 1)")
    rng = DeterministicRNG(seed)
    fleet: List[VMSpec] = []
    for index in range(count):
        klass = catalogue[rng.sample_zipf(len(catalogue), alpha=skew)]
        factor = 1.0 + (rng.random() * 2.0 - 1.0) * jitter
        fleet.append(
            VMSpec(
                name=f"{klass.name}-{index:03d}",
                cpu_demand=round(klass.cpu_demand * factor, 3),
                memory_bytes=klass.memory_bytes,
                interactive=klass.interactive,
            )
        )
    return fleet


def fleet_summary(fleet: Sequence[VMSpec]) -> dict:
    """Aggregate demand figures the placement experiments report."""
    return {
        "count": len(fleet),
        "total_cpu": round(sum(vm.cpu_demand for vm in fleet), 3),
        "total_memory_gib": sum(vm.memory_bytes for vm in fleet) / GIB,
        "interactive": sum(1 for vm in fleet if vm.interactive),
    }
