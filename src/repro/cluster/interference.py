"""Per-host performance under consolidation.

CPU model: the scheduler (see :mod:`repro.sched`) gives each vCPU a
proportional share, so when aggregate demand exceeds capacity every VM
runs at ``capacity / demand`` of its desired speed. Aggregate
throughput therefore rises linearly with VMs-per-host and flattens at
capacity -- the E8 knee.

Latency model for interactive VMs: M/M/1-style inflation
``R/R0 = 1 / (1 - rho)`` with utilization capped below 1, matching the
empirical blow-up of tail latency on saturated consolidated hosts.

A flat per-VM ``virt_overhead`` (the E1 tax for the chosen execution
mode) multiplies the usable capacity.
"""

from dataclasses import dataclass
from typing import Dict

from repro.cluster.host import Host
from repro.util.errors import ConfigError

#: Utilization ceiling for the latency formula (avoids division by 0).
_RHO_CAP = 0.99


@dataclass(frozen=True)
class HostPerformance:
    """Performance of every VM on one host."""

    host_name: str
    cpu_demand: float
    cpu_capacity: float
    #: Per-VM delivered throughput in core-units.
    throughput: Dict[str, float]
    #: Per-VM latency inflation factor (1.0 = uncontended).
    latency_factor: Dict[str, float]

    @property
    def aggregate_throughput(self) -> float:
        return sum(self.throughput.values())

    @property
    def saturated(self) -> bool:
        return self.cpu_demand > self.cpu_capacity


def host_performance(host: Host, virt_overhead: float = 0.05) -> HostPerformance:
    """Evaluate delivered throughput and latency factors on one host."""
    if virt_overhead < 0:
        raise ConfigError("virt_overhead must be non-negative")
    effective_capacity = host.spec.cpu_capacity / (1.0 + virt_overhead)
    demand = host.cpu_demand
    scale = 1.0 if demand <= effective_capacity else effective_capacity / demand
    rho = min(_RHO_CAP, demand / effective_capacity)
    throughput = {}
    latency = {}
    for name, vm in host.vms.items():
        throughput[name] = vm.cpu_demand * scale
        latency[name] = 1.0 / (1.0 - rho) if vm.interactive else max(1.0, 1.0 / scale)
    return HostPerformance(
        host_name=host.name,
        cpu_demand=demand,
        cpu_capacity=effective_capacity,
        throughput=throughput,
        latency_factor=latency,
    )
