"""Failure-domain-aware resilience control for a cluster.

The :class:`ResilienceController` closes the full availability loop a
HA control plane runs -- **detect → evacuate → re-place → verify** --
under *continuous* fault injection. Unlike one-shot
:func:`repro.cluster.placement.failover`, the controller assumes the
world keeps failing while it recovers:

* the ``host.crash`` fault site is polled **between evacuation moves**
  (one opportunity per alive host per move), so a cascade can strike
  mid-failover;
* a move whose target host died before the move landed is re-planned
  against the remaining survivors (counted in ``replans``);
* each move is priced through the pre-copy DES model when an
  :class:`~repro.cluster.placement.EvacuationConfig` is supplied, so
  ``migrate.link_drop`` / ``migrate.round_stall`` faults produce real
  retry/giveup behaviour per VM;
* anti-affinity constraints are honored on re-placement via the same
  relax ladder as initial placement, and VMs nobody can hold keep
  their full spec in ``lost`` so placement can be retried once
  capacity returns.

Telemetry lands under ``cluster.resilience.*`` (rounds, crashes,
moves, replans, recovered/lost counts, evacuation timing).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Placement, VMSpec
from repro.cluster.placement import (
    _CHOOSERS,
    _choose_constrained,
    RELAX_ORDER,
    AdmissionError,
    ConstraintSet,
    EvacuationConfig,
    PlacementPolicy,
)
from repro.migration.model import simulate_precopy
from repro.obs.registry import MetricsRegistry


@dataclass
class ResilienceReport:
    """Outcome of one controller run to quiescence."""

    #: Hosts already dead when the run started.
    initial_failures: List[str] = field(default_factory=list)
    #: Hosts that died *during* recovery (cascades).
    cascade_failures: List[str] = field(default_factory=list)
    #: Detect→evacuate rounds taken to reach quiescence.
    rounds: int = 0
    #: (vm, from_host, to_host) for every committed re-placement.
    moves: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Moves whose target died before landing and were planned again.
    replans: int = 0
    recovered: List[str] = field(default_factory=list)
    #: Full specs of VMs that ran out of cluster (retryable later).
    lost: List[VMSpec] = field(default_factory=list)
    #: VMs whose evacuation exhausted its retry budget (also in lost).
    gave_up: List[str] = field(default_factory=list)
    #: VM name -> relax level for re-placements below strict spread.
    relaxations: Dict[str, str] = field(default_factory=dict)
    evacuation_time_us: int = 0
    evacuation_retries: int = 0
    evacuation_backoff_us: int = 0
    #: True when, at quiescence, no dead host still holds a VM and
    #: every recovered VM sits on an alive host.
    verified: bool = False

    @property
    def lost_names(self) -> List[str]:
        return [vm.name for vm in self.lost]

    @property
    def all_failures(self) -> List[str]:
        return self.initial_failures + self.cascade_failures


class ResilienceController:
    """Drives a placement back to quiescence under continuous faults."""

    def __init__(
        self,
        placement: Placement,
        policy: PlacementPolicy = PlacementPolicy.WORST_FIT,
        constraints: Optional[ConstraintSet] = None,
        evacuate: Optional[EvacuationConfig] = None,
        injector=None,
        metrics=None,
        max_rounds: int = 32,
    ):
        self.placement = placement
        self.policy = policy
        # Re-placement never refuses for headroom: strip reservation,
        # keep the spread constraints.
        self.constraints = None
        if constraints is not None and constraints.anti_affinity_groups:
            self.constraints = ConstraintSet(
                anti_affinity_groups=constraints.anti_affinity_groups,
                max_per_domain=constraints.max_per_domain,
            )
        self.evacuate = evacuate
        self.injector = injector
        #: ``cluster.resilience.*`` counters/histograms.
        self.metrics = (metrics if metrics is not None else
                        MetricsRegistry().scope("cluster.resilience"))
        self.max_rounds = max_rounds
        self._link = (evacuate.make_link(injector=injector)
                      if evacuate is not None else None)

    # -- detect --------------------------------------------------------------

    def poll_crashes(self) -> List[str]:
        """One ``host.crash`` opportunity per alive host, in host order."""
        return [h.name for h in self.placement.hosts
                if h.maybe_crash(self.injector)]

    def stranded_hosts(self):
        return [h for h in self.placement.hosts if not h.alive and h.vms]

    # -- evacuate / re-place -------------------------------------------------

    def _pick_target(self, vm: VMSpec):
        choose = _CHOOSERS[self.policy]
        hosts = self.placement.hosts
        if self.constraints is None:
            return choose(vm, [h for h in hosts if h.fits(vm)]), RELAX_ORDER[0]
        try:
            return _choose_constrained(vm, hosts, choose, self.constraints)
        except AdmissionError:  # pragma: no cover - reservation stripped
            return None, RELAX_ORDER[-1]

    def _evacuate_one(self, vm: VMSpec, from_host, report: ResilienceReport
                      ) -> bool:
        """Move one stranded VM to a survivor; False when it is lost."""
        while True:
            target, level = self._pick_target(vm)
            if target is None:
                report.lost.append(vm)
                self.metrics.counter("lost").inc()
                return False
            if self.evacuate is not None:
                result = simulate_precopy(
                    self.evacuate.migration_config(vm), self._link,
                    injector=self.injector,
                    retry_policy=self.evacuate.retry_policy,
                )
                report.evacuation_time_us += result.total_time_us
                report.evacuation_retries += result.retries
                report.evacuation_backoff_us += result.backoff_us
                if result.gave_up:
                    report.gave_up.append(vm.name)
                    report.lost.append(vm)
                    self.metrics.counter("gave_up").inc()
                    self.metrics.counter("lost").inc()
                    return False
            # The cascade window: hosts may die while the move is in
            # flight. A freshly dead target means the move never
            # landed -- plan again against whoever is left.
            newly_dead = self.poll_crashes()
            if newly_dead:
                report.cascade_failures.extend(newly_dead)
                self.metrics.counter("crashes").inc(len(newly_dead))
            if not target.alive:
                report.replans += 1
                self.metrics.counter("replans").inc()
                continue
            target.place(vm)
            if level != RELAX_ORDER[0]:
                report.relaxations[vm.name] = level
            report.moves.append((vm.name, from_host.name, target.name))
            report.recovered.append(vm.name)
            self.metrics.counter("moves").inc()
            return True

    # -- the loop ------------------------------------------------------------

    def run(self) -> ResilienceReport:
        """Detect → evacuate → re-place until quiescent, then verify."""
        report = ResilienceReport(
            initial_failures=[h.name for h in self.placement.hosts
                              if not h.alive]
        )
        while report.rounds < self.max_rounds:
            stranded_on = self.stranded_hosts()
            if not stranded_on:
                break
            report.rounds += 1
            self.metrics.counter("rounds").inc()
            for host in stranded_on:
                # Largest-first (name-ordered within ties): packing
                # under pressure, deterministically.
                for vm in sorted(host.vms.values(),
                                 key=lambda v: (-v.memory_bytes, v.name)):
                    host.remove(vm.name)
                    self._evacuate_one(vm, host, report)
            # Cascades during this round may have stranded more VMs;
            # the next round picks them up.
        report.verified = self.verify(report)
        self.metrics.counter("recovered").inc(len(report.recovered))
        if report.evacuation_time_us:
            self.metrics.observe("recovery_time_us",
                                 report.evacuation_time_us)
        return report

    # -- verify --------------------------------------------------------------

    def verify(self, report: ResilienceReport) -> bool:
        """No dead host holds VMs; every recovered VM is on a live host."""
        if any(h.vms for h in self.placement.hosts if not h.alive):
            return False
        lost = set(report.lost_names)
        for name in report.recovered:
            if name in lost:
                continue  # recovered earlier, lost to a later cascade
            host = self.placement.host_of(name)
            if host is None or not host.alive:
                return False
        return True
