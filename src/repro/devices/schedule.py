"""Seeded, retire-indexed asynchronous event schedules.

The cycle-deadline :class:`~repro.devices.timer.TimerDevice` fires from
host pump loops (``tick(now_cycles)``), which makes delivery timing a
function of *how often the host polls* -- different in every engine. An
:class:`EventSchedule` removes the host from the loop: events are keyed
on the guest's **retire count** (``instret``), the one time base every
engine advances identically, and every execution engine polls the
schedule at each instruction edge (the interpreter and hardware-assist
cores per step, the block JIT and BT translator via edge-gated
dispatch). An event due at retire edge N is therefore raised after
instruction N retires and -- if IE is set -- delivered before the fetch
of instruction N+1, in every engine, bit-for-bit.

The schedule raises numbered PIC lines on an
:class:`~repro.devices.irq.InterruptController`; a bound console device
additionally receives a deterministic input byte for console-line
events, so the interrupt has device state behind it.

Two fault sites gate delivery timing (see :mod:`repro.faults.injector`):

* ``irq.delayed`` -- a due event is pushed back a drawn number of retire
  edges instead of firing;
* ``irq.storm`` -- a fired event re-queues itself at the next few
  consecutive edges (an interrupt storm on that line).

Both draw from per-site deterministic streams, and every opportunity
happens at an architected retire edge, so fault schedules replay
identically across engines and across ``--jobs`` fan-out.
"""

import heapq
from typing import Iterable, List, Optional, Tuple

from repro.devices.irq import (
    IRQ_CONSOLE_LINE,
    IRQ_TIMER_LINE,
    IRQ_VIRTIO_BLK_LINE,
    InterruptController,
)
from repro.util.rng import DeterministicRNG

#: ``next_due`` when the schedule is exhausted (compares above any
#: reachable instret).
NEVER = 1 << 62

#: Widest storm burst ``irq.storm`` re-queues (events at the next 1..N
#: consecutive retire edges).
_STORM_MAX_BURST = 4

#: Farthest push-back ``irq.delayed`` applies, in retire edges.
_DELAY_MAX_EDGES = 8


class EventSchedule:
    """A sorted queue of (due_retire_count, line) interrupt events.

    ``next_due`` is maintained as a plain int attribute so execution
    engines can poll it with one attribute load per instruction edge
    (or fold it into an existing budget ceiling, as the block JIT does
    with ``_loop_stop``).
    """

    def __init__(
        self,
        events: Iterable[Tuple[int, int]],
        controller: InterruptController,
        console=None,
        injector=None,
        exit_on_fire: bool = False,
    ):
        self.controller = controller
        self.console = console
        self.injector = injector
        #: When True, a run loop that fired events should return to its
        #: pump (StopReason.EVENT) so the VMM can inject virtual IRQs
        #: before re-entering direct execution.
        self.exit_on_fire = exit_on_fire
        self.fired_count = 0
        self.deferred_count = 0
        self.storm_extra = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, int]] = []
        for due, line in events:
            self._push(due, line)
        self.next_due = self._heap[0][0] if self._heap else NEVER

    def __len__(self) -> int:
        return len(self._heap)

    def _push(self, due: int, line: int) -> None:
        # The sequence number breaks due-count ties deterministically
        # (insertion order), never by line-number comparison accidents.
        heapq.heappush(self._heap, (due, self._seq, line))
        self._seq += 1

    def fire_due(self, instret: int) -> int:
        """Raise every event due at or before retire edge ``instret``.

        Returns the number of events actually raised (deferred events
        count zero). Charges no cycles: the schedule is a device-side
        source, not guest work.
        """
        heap = self._heap
        inj = self.injector
        fired = 0
        while heap and heap[0][0] <= instret:
            _due, _seq, line = heapq.heappop(heap)
            if inj is not None and inj.fires("irq.delayed"):
                # Push back a drawn number of retire edges; the event
                # stays queued, it just lands late.
                defer = 1 + int(inj.uniform("irq.delayed") * (_DELAY_MAX_EDGES - 1))
                self._push(instret + defer, line)
                self.deferred_count += 1
                continue
            self._raise(line)
            fired += 1
            self.fired_count += 1
            if inj is not None and inj.fires("irq.storm"):
                burst = 1 + int(inj.uniform("irq.storm") * (_STORM_MAX_BURST - 1))
                for k in range(1, burst + 1):
                    self._push(instret + k, line)
                self.storm_extra += burst
        self.next_due = heap[0][0] if heap else NEVER
        return fired

    def _raise(self, line: int) -> None:
        if line == IRQ_CONSOLE_LINE and self.console is not None:
            # Deterministic input byte: the interrupt announces data the
            # guest can actually IN from the console RX port.
            self.console.push_input(ord("k"))
        self.controller.raise_line(line)

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: int,
        controller: InterruptController,
        console=None,
        injector=None,
        exit_on_fire: bool = False,
    ) -> "EventSchedule":
        """A reproducible mixed-device schedule over ``[0, horizon)``.

        A quasi-periodic timer train plus sparse virtio-completion and
        console-input events, all a pure function of ``seed`` and
        ``horizon``. Separate forked streams per device class keep the
        trains decoupled (adding console events never moves a timer
        edge).
        """
        rng = DeterministicRNG(seed)
        events: List[Tuple[int, int]] = []
        timer = rng.fork(1)
        due = timer.randint(16, 96)
        period = timer.randint(32, 160)
        while due < horizon:
            events.append((due, IRQ_TIMER_LINE))
            due += period + timer.randint(0, 32)
        virtio = rng.fork(2)
        for _ in range(virtio.randint(0, 3)):
            events.append(
                (virtio.randint(24, max(25, horizon - 1)), IRQ_VIRTIO_BLK_LINE)
            )
        cons = rng.fork(3)
        for _ in range(cons.randint(0, 2)):
            events.append(
                (cons.randint(24, max(25, horizon - 1)), IRQ_CONSOLE_LINE)
            )
        return cls(events, controller, console=console, injector=injector,
                   exit_on_fire=exit_on_fire)


def attach_schedule(cpu, schedule: Optional[EventSchedule]) -> None:
    """Bind (or clear, with None) a schedule on a CPU core."""
    cpu.events = schedule
