"""Device models.

Two I/O virtualization styles are implemented for both the block device
and the NIC, matching the comparison in experiment E4:

* **Emulated (port-programmed) devices** -- the guest programs each
  request through several port writes (sector, count, DMA address,
  command), exactly like an IDE/NE2000-era device. Under a VMM every
  port access is a VM exit.
* **Virtio-style paravirtual devices** -- the guest posts descriptors
  into a split ring living in guest memory and *kicks* the device with a
  single port write per batch, so exits are amortized over the batch.

Devices address guest memory through a small accessor protocol (``mem``
with ``read_u32/write_u32/read_bytes/write_bytes``); natively that is
the :class:`~repro.mem.physmem.PhysicalMemory` itself, inside a VM it is
the VM's guest-physical view.
"""

from repro.devices.bus import PortBus, PortDevice
from repro.devices.irq import InterruptController, IRQLine
from repro.devices.timer import TimerDevice, TIMER_BASE
from repro.devices.console import ConsoleDevice, CONSOLE_BASE
from repro.devices.block import BlockDevice, BLOCK_BASE, SECTOR_SIZE
from repro.devices.power import PowerControl, POWER_BASE
from repro.devices.net import NetDevice, NET_BASE
from repro.devices.virtio import (
    VirtQueue,
    VirtioBlockDevice,
    VirtioNetDevice,
    VIRTIO_BLK_BASE,
    VIRTIO_NET_BASE,
)

__all__ = [
    "PortBus",
    "PortDevice",
    "InterruptController",
    "IRQLine",
    "TimerDevice",
    "TIMER_BASE",
    "ConsoleDevice",
    "CONSOLE_BASE",
    "BlockDevice",
    "BLOCK_BASE",
    "SECTOR_SIZE",
    "PowerControl",
    "POWER_BASE",
    "NetDevice",
    "NET_BASE",
    "VirtQueue",
    "VirtioBlockDevice",
    "VirtioNetDevice",
    "VIRTIO_BLK_BASE",
    "VIRTIO_NET_BASE",
]
