"""Interrupt controller (a minimal PIC).

Devices raise numbered lines; the controller coalesces them into the
CPU's two architectural interrupt causes (line 0 is the timer, all
others are "device") and exposes a status port so the kernel's
interrupt handler can find out *which* device interrupted.

The ``sink`` is whoever receives the coalesced interrupt: natively the
CPU core (via ``assert_irq``), inside a VM the VMM's virtual-interrupt
queue. It must provide ``assert_irq(cause)``.

Two fault sites interpose on ``raise_line`` when an ``injector`` is
bound (both registered in :mod:`repro.faults.injector`):

* ``irq.lost`` -- the raise is dropped on the floor: no pending bit, no
  sink assertion (a wire glitch);
* ``irq.spurious`` -- the sink additionally sees a device-cause
  assertion with **no** pending line behind it, so the guest's handler
  reads an empty status mask (the classic spurious interrupt).

Per-line ``dev.irq`` observability counters (``delivered.line<n>``,
``coalesced.line<n>``, ``lost.line<n>``, ``spurious``) feed the
stuck-line/storm watchdog in :mod:`repro.faults.watchdog`.
"""

from typing import List, Optional

from repro.cpu.isa import Cause
from repro.devices.bus import PortDevice
from repro.obs.registry import MetricsRegistry
from repro.util.errors import DeviceError

#: Port: read = bitmask of pending lines; write = acknowledge (clear) mask.
PIC_BASE = 0x20
PIC_STATUS = PIC_BASE

NUM_LINES = 16

#: Well-known line assignments.
IRQ_TIMER_LINE = 0
IRQ_BLOCK_LINE = 1
IRQ_NET_LINE = 2
IRQ_VIRTIO_BLK_LINE = 3
IRQ_VIRTIO_NET_LINE = 4
IRQ_CONSOLE_LINE = 5


class IRQLine:
    """Handle a device uses to raise its interrupt line."""

    def __init__(self, controller: "InterruptController", line: int):
        self.controller = controller
        self.line = line

    def raise_(self) -> None:
        self.controller.raise_line(self.line)


class InterruptController(PortDevice):
    """16-line level-ish interrupt controller."""

    def __init__(self, sink=None, injector=None, metrics=None):
        self.sink = sink
        self.injector = injector
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.irq"))
        self.pending: List[bool] = [False] * NUM_LINES
        self.raised_count = 0
        #: Per-line raise tallies (the storm watchdog's rate source).
        self.raise_counts: List[int] = [0] * NUM_LINES
        self.lost_count = 0
        self.coalesced_count = 0
        self.spurious_count = 0

    def line(self, number: int) -> IRQLine:
        if not 0 <= number < NUM_LINES:
            raise DeviceError(f"no IRQ line {number}")
        return IRQLine(self, number)

    def raise_line(self, number: int) -> None:
        if not 0 <= number < NUM_LINES:
            raise DeviceError(f"no IRQ line {number}")
        injector = self.injector
        if injector is not None and injector.fires("irq.lost"):
            self.lost_count += 1
            self.metrics.counter(f"lost.line{number}").inc()
            return
        if self.pending[number]:
            # Level-ish coalescing: the line is already pending; the
            # handler will service both raises with one status read.
            self.coalesced_count += 1
            self.metrics.counter(f"coalesced.line{number}").inc()
        self.pending[number] = True
        self.raised_count += 1
        self.raise_counts[number] += 1
        self.metrics.counter(f"delivered.line{number}").inc()
        if self.sink is not None:
            cause = Cause.IRQ_TIMER if number == IRQ_TIMER_LINE else Cause.IRQ_DEVICE
            self.sink.assert_irq(cause)
        if injector is not None and injector.fires("irq.spurious"):
            # A cause assertion with no pending line behind it: the
            # handler's status read comes back with this bit clear.
            self.spurious_count += 1
            self.metrics.counter("spurious").inc()
            if self.sink is not None:
                self.sink.assert_irq(Cause.IRQ_DEVICE)

    def pending_mask(self) -> int:
        mask = 0
        for i, p in enumerate(self.pending):
            if p:
                mask |= 1 << i
        return mask

    def highest_pending(self) -> Optional[int]:
        for i, p in enumerate(self.pending):
            if p:
                return i
        return None

    # -- port interface (read status, write-1-to-acknowledge) ----------------

    def port_read(self, port: int) -> int:
        if port != PIC_STATUS:
            raise DeviceError(f"PIC has no port {port:#x}")
        return self.pending_mask()

    def port_write(self, port: int, value: int) -> None:
        if port != PIC_STATUS:
            raise DeviceError(f"PIC has no port {port:#x}")
        for i in range(NUM_LINES):
            if value & (1 << i):
                self.pending[i] = False
