"""Interrupt controller (a minimal PIC).

Devices raise numbered lines; the controller coalesces them into the
CPU's two architectural interrupt causes (line 0 is the timer, all
others are "device") and exposes a status port so the kernel's
interrupt handler can find out *which* device interrupted.

The ``sink`` is whoever receives the coalesced interrupt: natively the
CPU core (via ``assert_irq``), inside a VM the VMM's virtual-interrupt
queue. It must provide ``assert_irq(cause)``.
"""

from typing import List, Optional

from repro.cpu.isa import Cause
from repro.devices.bus import PortDevice
from repro.util.errors import DeviceError

#: Port: read = bitmask of pending lines; write = acknowledge (clear) mask.
PIC_BASE = 0x20
PIC_STATUS = PIC_BASE

NUM_LINES = 16

#: Well-known line assignments.
IRQ_TIMER_LINE = 0
IRQ_BLOCK_LINE = 1
IRQ_NET_LINE = 2
IRQ_VIRTIO_BLK_LINE = 3
IRQ_VIRTIO_NET_LINE = 4


class IRQLine:
    """Handle a device uses to raise its interrupt line."""

    def __init__(self, controller: "InterruptController", line: int):
        self.controller = controller
        self.line = line

    def raise_(self) -> None:
        self.controller.raise_line(self.line)


class InterruptController(PortDevice):
    """16-line level-ish interrupt controller."""

    def __init__(self, sink=None):
        self.sink = sink
        self.pending: List[bool] = [False] * NUM_LINES
        self.raised_count = 0

    def line(self, number: int) -> IRQLine:
        if not 0 <= number < NUM_LINES:
            raise DeviceError(f"no IRQ line {number}")
        return IRQLine(self, number)

    def raise_line(self, number: int) -> None:
        if not 0 <= number < NUM_LINES:
            raise DeviceError(f"no IRQ line {number}")
        self.pending[number] = True
        self.raised_count += 1
        if self.sink is not None:
            cause = Cause.IRQ_TIMER if number == IRQ_TIMER_LINE else Cause.IRQ_DEVICE
            self.sink.assert_irq(cause)

    def pending_mask(self) -> int:
        mask = 0
        for i, p in enumerate(self.pending):
            if p:
                mask |= 1 << i
        return mask

    def highest_pending(self) -> Optional[int]:
        for i, p in enumerate(self.pending):
            if p:
                return i
        return None

    # -- port interface (read status, write-1-to-acknowledge) ----------------

    def port_read(self, port: int) -> int:
        if port != PIC_STATUS:
            raise DeviceError(f"PIC has no port {port:#x}")
        return self.pending_mask()

    def port_write(self, port: int, value: int) -> None:
        if port != PIC_STATUS:
            raise DeviceError(f"PIC has no port {port:#x}")
        for i in range(NUM_LINES):
            if value & (1 << i):
                self.pending[i] = False
