"""Programmable interval timer.

Deadlines are expressed in CPU *cycles* (the deterministic time base of
the instruction-accurate engine). The machine run loop calls
:meth:`TimerDevice.tick` with the CPU's current cycle count between
execution slices; when a programmed deadline has passed, the timer
raises IRQ line 0.

Ports::

    TIMER_PERIOD (base+0): write period in cycles (0 disables);
                           read back current period
    TIMER_CTRL   (base+1): write 1 = one-shot, 2 = periodic;
                           read = 1 if armed
    TIMER_COUNT  (base+2): read number of expirations so far
"""

from repro.devices.bus import PortDevice
from repro.devices.irq import IRQLine
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import DeviceError

TIMER_BASE = 0x40
TIMER_PERIOD = TIMER_BASE
TIMER_CTRL = TIMER_BASE + 1
TIMER_COUNT = TIMER_BASE + 2

MODE_OFF = 0
MODE_ONESHOT = 1
MODE_PERIODIC = 2


class TimerDevice(PortDevice):
    """Cycle-driven interval timer."""

    expirations = counter_attr()

    def __init__(self, irq: IRQLine, metrics=None):
        self.irq = irq
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.timer"))
        self.period = 0
        self.mode = MODE_OFF
        self.deadline = None  # absolute cycle count

    def program(self, period: int, periodic: bool, now_cycles: int) -> None:
        """Arm the timer ``period`` cycles from ``now_cycles``."""
        if period <= 0:
            raise DeviceError("timer period must be positive")
        self.period = period
        self.mode = MODE_PERIODIC if periodic else MODE_ONESHOT
        self.deadline = now_cycles + period

    def disarm(self) -> None:
        self.mode = MODE_OFF
        self.deadline = None

    def tick(self, now_cycles: int) -> int:
        """Fire any elapsed deadlines; returns the number fired."""
        fired = 0
        while self.deadline is not None and now_cycles >= self.deadline:
            self.expirations += 1
            fired += 1
            self.irq.raise_()
            if self.mode == MODE_PERIODIC:
                self.deadline += self.period
            else:
                self.disarm()
                break
        return fired

    def next_deadline(self):
        """Absolute cycle count of the next expiry, or None."""
        return self.deadline

    # -- port interface -----------------------------------------------------
    # The guest programs the timer relative to its own CYCLES counter; the
    # machine loop re-bases via pending_program.

    def port_read(self, port: int) -> int:
        if port == TIMER_PERIOD:
            return self.period
        if port == TIMER_CTRL:
            return 1 if self.deadline is not None else 0
        if port == TIMER_COUNT:
            return self.expirations & 0xFFFFFFFF
        raise DeviceError(f"timer has no port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        if port == TIMER_PERIOD:
            self.period = value
            return
        if port == TIMER_CTRL:
            if value == MODE_OFF:
                self.disarm()
                return
            if value not in (MODE_ONESHOT, MODE_PERIODIC):
                raise DeviceError(f"bad timer mode {value}")
            if self.period <= 0:
                raise DeviceError("timer armed with no period")
            self.mode = value
            # Deadline is rebased by the machine loop on the next tick()
            # call; mark it as "arm at next tick".
            self.deadline = -1
            return
        raise DeviceError(f"timer has no writable port {port:#x}")

    def rebase_if_armed(self, now_cycles: int) -> None:
        """Called by the machine loop right after a port arm (deadline==-1)."""
        if self.deadline == -1:
            self.deadline = now_cycles + self.period
