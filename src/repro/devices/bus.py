"""Port-mapped I/O bus.

Devices claim port ranges; the bus routes IN/OUT accesses. The CPU (or
the VMM's I/O exit handler) calls :meth:`PortBus.io_in` /
:meth:`PortBus.io_out`.
"""

from typing import Dict, Optional

from repro.util.errors import DeviceError


class PortDevice:
    """Base class for port-programmed devices."""

    def port_read(self, port: int) -> int:
        """Handle IN from ``port`` (absolute port number)."""
        raise DeviceError(f"{type(self).__name__} has no readable port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        """Handle OUT to ``port`` (absolute port number)."""
        raise DeviceError(f"{type(self).__name__} has no writable port {port:#x}")


class PortBus:
    """Routes port accesses to registered devices."""

    def __init__(self, strict: bool = False):
        #: strict=True raises on unclaimed ports; False returns 0 /
        #: discards, like real hardware's open bus.
        self.strict = strict
        self._ports: Dict[int, PortDevice] = {}
        self.reads = 0
        self.writes = 0

    def register(self, device: PortDevice, base: int, count: int) -> None:
        """Claim ports [base, base+count) for ``device``."""
        if count <= 0:
            raise DeviceError("port range must be non-empty")
        for port in range(base, base + count):
            if port in self._ports:
                raise DeviceError(f"port {port:#x} already claimed")
            self._ports[port] = device

    def device_at(self, port: int) -> Optional[PortDevice]:
        return self._ports.get(port)

    def io_in(self, port: int) -> int:
        self.reads += 1
        device = self._ports.get(port)
        if device is None:
            if self.strict:
                raise DeviceError(f"IN from unclaimed port {port:#x}")
            return 0
        return device.port_read(port) & 0xFFFFFFFF

    def io_out(self, port: int, value: int) -> None:
        self.writes += 1
        device = self._ports.get(port)
        if device is None:
            if self.strict:
                raise DeviceError(f"OUT to unclaimed port {port:#x}")
            return
        device.port_write(port, value & 0xFFFFFFFF)
