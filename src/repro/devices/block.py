"""Emulated (port-programmed) block device.

The classic fully-emulated disk interface: the guest programs one
request with four port writes and reads status back, so a single
request costs five device-register accesses -- under a VMM, five VM
exits. Compare :class:`repro.devices.virtio.VirtioBlockDevice`.

Ports (base = :data:`BLOCK_BASE`)::

    +0 BLK_SECTOR : starting sector number
    +1 BLK_COUNT  : sector count
    +2 BLK_DMA    : guest-physical DMA address
    +3 BLK_CMD    : 1 = read (disk -> memory), 2 = write (memory -> disk)
    +4 BLK_STATUS : 0 = ready, 2 = error
    +5 BLK_NSECT  : total sectors (read-only)
"""

from repro.devices.bus import PortDevice
from repro.devices.irq import IRQLine
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import DeviceError, MemoryError_

BLOCK_BASE = 0x50
BLK_SECTOR = BLOCK_BASE
BLK_COUNT = BLOCK_BASE + 1
BLK_DMA = BLOCK_BASE + 2
BLK_CMD = BLOCK_BASE + 3
BLK_STATUS = BLOCK_BASE + 4
BLK_NSECT = BLOCK_BASE + 5

SECTOR_SIZE = 512

CMD_READ = 1
CMD_WRITE = 2

STATUS_READY = 0
STATUS_ERROR = 2


class BlockDevice(PortDevice):
    """Sector-addressed disk with port-programmed DMA.

    Fault sites (evaluated when an ``injector`` is attached):
    ``block.io_error`` completes the command with ``STATUS_ERROR``
    (transient media error -- the driver retries); ``block.stuck``
    wedges the device: commands are accepted but never complete until
    the host :meth:`reset`\\ s it (the
    :class:`~repro.faults.watchdog.DeviceTimeoutMonitor` recovery path).
    """

    reads = counter_attr()
    writes = counter_attr()
    io_errors = counter_attr()
    stalled_commands = counter_attr()
    resets = counter_attr()
    commands = counter_attr()
    completions = counter_attr()
    sectors_transferred = counter_attr()

    def __init__(self, mem, irq: IRQLine, capacity_sectors: int = 2048,
                 injector=None, metrics=None):
        if capacity_sectors <= 0:
            raise DeviceError("disk needs at least one sector")
        self.mem = mem
        self.irq = irq
        self.capacity_sectors = capacity_sectors
        self.injector = injector
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.block"))
        self.data = bytearray(capacity_sectors * SECTOR_SIZE)
        self._sector = 0
        self._count = 1
        self._dma = 0
        self._last_cmd = None
        self.status = STATUS_READY
        self.stuck = False

    # -- detection/recovery contract (DeviceTimeoutMonitor) -----------------

    @property
    def ops_submitted(self) -> int:
        return self.commands

    @property
    def ops_completed(self) -> int:
        return self.completions

    def reset(self) -> None:
        """Host-side device reset: clear the wedge, replay the last command."""
        self.resets += 1
        self.stuck = False
        self.status = STATUS_READY
        if self._last_cmd is not None:
            self._execute(self._last_cmd, replay=True)

    # -- direct host-side access (test setup, image loading) ---------------

    def load_image(self, data: bytes, sector: int = 0) -> None:
        offset = sector * SECTOR_SIZE
        if offset + len(data) > len(self.data):
            raise DeviceError("image larger than disk")
        self.data[offset : offset + len(data)] = data

    def read_sectors(self, sector: int, count: int) -> bytes:
        self._check_range(sector, count)
        off = sector * SECTOR_SIZE
        return bytes(self.data[off : off + count * SECTOR_SIZE])

    # -- port interface -----------------------------------------------------

    def port_read(self, port: int) -> int:
        if port == BLK_STATUS:
            return self.status
        if port == BLK_NSECT:
            return self.capacity_sectors
        if port == BLK_SECTOR:
            return self._sector
        if port == BLK_COUNT:
            return self._count
        if port == BLK_DMA:
            return self._dma
        raise DeviceError(f"block device has no port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        if port == BLK_SECTOR:
            self._sector = value
        elif port == BLK_COUNT:
            self._count = value
        elif port == BLK_DMA:
            self._dma = value
        elif port == BLK_CMD:
            self._execute(value)
        else:
            raise DeviceError(f"block device has no writable port {port:#x}")

    def _execute(self, cmd: int, replay: bool = False) -> None:
        if not replay:
            self.commands += 1
            self._last_cmd = cmd
            if self.injector is not None and not self.stuck and (
                self.injector.fires("block.stuck")
            ):
                self.stuck = True
        if self.stuck:
            self.stalled_commands += 1
            return  # wedged: no completion, no interrupt -- until reset()
        if self.injector is not None and self.injector.fires("block.io_error"):
            self.io_errors += 1
            self.status = STATUS_ERROR
            self.completions += 1
            self.irq.raise_()
            return
        try:
            self._check_range(self._sector, self._count)
        except DeviceError:
            self.status = STATUS_ERROR
            self.completions += 1
            self.irq.raise_()
            return
        nbytes = self._count * SECTOR_SIZE
        off = self._sector * SECTOR_SIZE
        try:
            if cmd == CMD_READ:
                self.mem.write_bytes(self._dma, bytes(self.data[off : off + nbytes]))
                self.reads += 1
            elif cmd == CMD_WRITE:
                self.data[off : off + nbytes] = self.mem.read_bytes(self._dma, nbytes)
                self.writes += 1
        except MemoryError_ as err:
            # Subsystem boundary: DMA target outside guest RAM surfaces
            # as a device error with the memory fault as the cause.
            raise DeviceError(
                f"block DMA at gpa {self._dma:#x} references bad guest memory"
            ) from err
        if cmd not in (CMD_READ, CMD_WRITE):
            self.status = STATUS_ERROR
            self.completions += 1
            self.irq.raise_()
            return
        self.sectors_transferred += self._count
        self.status = STATUS_READY
        self.completions += 1
        self.irq.raise_()

    def _check_range(self, sector: int, count: int) -> None:
        if count <= 0 or sector < 0 or sector + count > self.capacity_sectors:
            raise DeviceError(
                f"sector range [{sector}, {sector + count}) outside disk "
                f"of {self.capacity_sectors} sectors"
            )
