"""Serial console: the guest's printf path, plus a small RX side.

Ports::

    CONS_TX     (base+0): write one character (low byte);
                          read one received character (0 when empty)
    CONS_STATUS (base+1): read bit0 = TX ready (always 1),
                          bit1 = RX data available

Received characters arrive via :meth:`push_input` -- host-side test
harnesses and the seeded :class:`~repro.devices.schedule.EventSchedule`
use it to model console input interrupts at reproducible points. When
an ``irq`` line is bound, each pushed character raises it.
"""

from repro.devices.bus import PortDevice
from repro.util.errors import DeviceError

CONSOLE_BASE = 0x10
CONS_TX = CONSOLE_BASE
CONS_STATUS = CONSOLE_BASE + 1


class ConsoleDevice(PortDevice):
    """Character console with a capture buffer and an input queue."""

    def __init__(self, capacity: int = 1 << 20, irq=None):
        self._chars = []
        self.capacity = capacity
        self.chars_written = 0
        self.irq = irq
        self._rx = []
        self.chars_received = 0

    @property
    def text(self) -> str:
        return "".join(self._chars)

    def lines(self):
        return self.text.splitlines()

    def clear(self) -> None:
        self._chars = []

    def push_input(self, value: int) -> None:
        """Queue one received byte and raise the console IRQ line."""
        self._rx.append(value & 0xFF)
        if self.irq is not None:
            self.irq.raise_()

    def port_read(self, port: int) -> int:
        if port == CONS_STATUS:
            return 1 | (2 if self._rx else 0)
        if port == CONS_TX:
            if not self._rx:
                return 0
            self.chars_received += 1
            return self._rx.pop(0)
        raise DeviceError(f"console has no readable port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        if port != CONS_TX:
            raise DeviceError(f"console has no writable port {port:#x}")
        self.chars_written += 1
        if len(self._chars) < self.capacity:
            self._chars.append(chr(value & 0xFF))
