"""Serial console: the guest's printf path.

Ports::

    CONS_TX     (base+0): write one character (low byte)
    CONS_STATUS (base+1): read 1 (always ready)
"""

from repro.devices.bus import PortDevice
from repro.util.errors import DeviceError

CONSOLE_BASE = 0x10
CONS_TX = CONSOLE_BASE
CONS_STATUS = CONSOLE_BASE + 1


class ConsoleDevice(PortDevice):
    """Write-only character console with a capture buffer."""

    def __init__(self, capacity: int = 1 << 20):
        self._chars = []
        self.capacity = capacity
        self.chars_written = 0

    @property
    def text(self) -> str:
        return "".join(self._chars)

    def lines(self):
        return self.text.splitlines()

    def clear(self) -> None:
        self._chars = []

    def port_read(self, port: int) -> int:
        if port == CONS_STATUS:
            return 1
        raise DeviceError(f"console has no readable port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        if port != CONS_TX:
            raise DeviceError(f"console has no writable port {port:#x}")
        self.chars_written += 1
        if len(self._chars) < self.capacity:
            self._chars.append(chr(value & 0xFF))
