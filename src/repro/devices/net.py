"""Emulated (port-programmed) network interface.

Like the block device, every frame costs several register accesses:
address, length, command, status -- four exits per packet under a VMM.
Frames are delivered to a host-side callback (or queued for tests).

Ports (base = :data:`NET_BASE`)::

    +0 NET_TX_ADDR : guest-physical address of the outgoing frame
    +1 NET_TX_LEN  : frame length in bytes
    +2 NET_TX_CMD  : write 1 to transmit
    +3 NET_STATUS  : bit0 = tx ready, bit1 = rx frame waiting
    +4 NET_RX_ADDR : guest-physical buffer for the next received frame
    +5 NET_RX_CMD  : write 1 to pop the next rx frame into NET_RX_ADDR
    +6 NET_RX_LEN  : length of the frame just popped
"""

from collections import deque
from typing import Callable, Deque, Optional

from repro.devices.bus import PortDevice
from repro.devices.irq import IRQLine
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import DeviceError

NET_BASE = 0x60
NET_TX_ADDR = NET_BASE
NET_TX_LEN = NET_BASE + 1
NET_TX_CMD = NET_BASE + 2
NET_STATUS = NET_BASE + 3
NET_RX_ADDR = NET_BASE + 4
NET_RX_CMD = NET_BASE + 5
NET_RX_LEN = NET_BASE + 6

MAX_FRAME = 9000  # jumbo-sized sanity cap


class NetDevice(PortDevice):
    """Port-programmed NIC with host-side tx sink and rx queue."""

    tx_frames = counter_attr()
    tx_bytes = counter_attr()
    rx_frames = counter_attr()

    def __init__(self, mem, irq: IRQLine,
                 tx_sink: Optional[Callable[[bytes], None]] = None,
                 metrics=None):
        self.mem = mem
        self.irq = irq
        self.tx_sink = tx_sink
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.net"))
        self.sent: Deque[bytes] = deque(maxlen=1024)  # tap for tests
        self._rx_queue: Deque[bytes] = deque()
        self._tx_addr = 0
        self._tx_len = 0
        self._rx_addr = 0
        self._rx_len = 0

    def inject_rx(self, frame: bytes) -> None:
        """Host side: queue a frame for the guest and interrupt it."""
        if len(frame) > MAX_FRAME:
            raise DeviceError(f"frame of {len(frame)} bytes exceeds {MAX_FRAME}")
        self._rx_queue.append(bytes(frame))
        self.irq.raise_()

    def port_read(self, port: int) -> int:
        if port == NET_STATUS:
            return 1 | (2 if self._rx_queue else 0)
        if port == NET_RX_LEN:
            return self._rx_len
        if port == NET_TX_ADDR:
            return self._tx_addr
        if port == NET_TX_LEN:
            return self._tx_len
        raise DeviceError(f"NIC has no readable port {port:#x}")

    def port_write(self, port: int, value: int) -> None:
        if port == NET_TX_ADDR:
            self._tx_addr = value
        elif port == NET_TX_LEN:
            if value > MAX_FRAME:
                raise DeviceError(f"tx length {value} exceeds {MAX_FRAME}")
            self._tx_len = value
        elif port == NET_TX_CMD:
            self._transmit()
        elif port == NET_RX_ADDR:
            self._rx_addr = value
        elif port == NET_RX_CMD:
            self._receive()
        else:
            raise DeviceError(f"NIC has no writable port {port:#x}")

    def _transmit(self) -> None:
        frame = self.mem.read_bytes(self._tx_addr, self._tx_len)
        self.tx_frames += 1
        self.tx_bytes += len(frame)
        self.sent.append(frame)
        if self.tx_sink is not None:
            self.tx_sink(frame)

    def _receive(self) -> None:
        if not self._rx_queue:
            self._rx_len = 0
            return
        frame = self._rx_queue.popleft()
        self.mem.write_bytes(self._rx_addr, frame)
        self._rx_len = len(frame)
        self.rx_frames += 1
