"""Power control: how a guest (or native kernel) requests shutdown.

Port (base = :data:`POWER_BASE`): write any nonzero value to request
power-off; read returns 1 once requested.
"""

from repro.devices.bus import PortDevice
from repro.util.errors import DeviceError

POWER_BASE = 0xF0


class PowerControl(PortDevice):
    """One-port power-off latch."""

    def __init__(self):
        self.shutdown_requested = False
        self.code = 0  # value written at shutdown (guest exit status)

    def port_read(self, port: int) -> int:
        if port != POWER_BASE:
            raise DeviceError(f"power control has no port {port:#x}")
        return 1 if self.shutdown_requested else 0

    def port_write(self, port: int, value: int) -> None:
        if port != POWER_BASE:
            raise DeviceError(f"power control has no port {port:#x}")
        if value:
            self.shutdown_requested = True
            self.code = value
