"""Virtio-style paravirtual devices: split rings in guest memory.

The defining property (experiment E4): the guest posts any number of
requests into a ring that lives in *guest memory* and then notifies the
device with a **single** port write (the "kick"). Under a VMM that is
one exit per batch instead of several exits per request. Completions go
into the used ring plus one interrupt per drain.

Ring layout (all fields u32 little-endian, ``N`` = queue size):

* descriptor table: N entries of 16 bytes -- addr, len, flags, next
* available ring:   idx, ring[N]
* used ring:        idx, then N pairs of (desc_id, written_len)

Descriptor flags: bit0 = NEXT (chain continues), bit1 = WRITE (device
writes to this buffer).

virtio-blk request = 3-descriptor chain, as in the real spec:

1. header (device-readable, 12 bytes): type (0=read, 1=write), sector,
   sector count;
2. data buffer (device-writable for reads, readable for writes);
3. status byte (device-writable): 0 = OK, 1 = error.

virtio-net: tx queue posts device-readable frame buffers; rx queue
posts device-writable empty buffers that :meth:`VirtioNetDevice.inject_rx`
fills.

Ports (per device, base +0..+5)::

    +0 QUEUE_DESC  : guest-physical address of the descriptor table
    +1 QUEUE_AVAIL : guest-physical address of the avail ring
    +2 QUEUE_USED  : guest-physical address of the used ring
    +3 QUEUE_SIZE  : number of descriptors
    +4 KICK        : process new avail entries (the one exit per batch)
    +5 STATUS      : 1 when the queue is configured

The NIC claims two consecutive 6-port blocks (tx queue at base, rx
queue at base+8).
"""

from typing import Callable, List, Optional, Tuple

from repro.devices.block import SECTOR_SIZE
from repro.devices.bus import PortDevice
from repro.devices.irq import IRQLine
from repro.obs.registry import MetricsRegistry, counter_attr
from repro.util.errors import DeviceError, MemoryError_

VIRTIO_BLK_BASE = 0x70
VIRTIO_NET_BASE = 0x80  # tx queue; rx queue at +8

OFF_DESC = 0
OFF_AVAIL = 1
OFF_USED = 2
OFF_SIZE = 3
OFF_KICK = 4
OFF_STATUS = 5

DESC_F_NEXT = 1
DESC_F_WRITE = 2

BLK_T_READ = 0
BLK_T_WRITE = 1

BLK_S_OK = 0
BLK_S_ERROR = 1


class VirtQueue:
    """Device-side view of one split ring in guest memory."""

    kicks = counter_attr()
    requests = counter_attr()

    def __init__(self, mem, metrics=None):
        self.mem = mem
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.virtq"))
        self.desc_gpa = 0
        self.avail_gpa = 0
        self.used_gpa = 0
        self.size = 0
        self.last_avail_idx = 0

    @property
    def configured(self) -> bool:
        return bool(self.size and self.desc_gpa and self.avail_gpa and self.used_gpa)

    def read_desc(self, index: int) -> Tuple[int, int, int, int]:
        if not 0 <= index < self.size:
            raise DeviceError(f"descriptor index {index} out of ring of {self.size}")
        base = self.desc_gpa + index * 16
        return (
            self.mem.read_u32(base),
            self.mem.read_u32(base + 4),
            self.mem.read_u32(base + 8),
            self.mem.read_u32(base + 12),
        )

    def collect_chain(self, head: int) -> List[Tuple[int, int, int]]:
        """Follow a descriptor chain; return [(addr, len, flags), ...]."""
        chain = []
        index = head
        for _ in range(self.size + 1):
            addr, length, flags, next_ = self.read_desc(index)
            chain.append((addr, length, flags))
            if not flags & DESC_F_NEXT:
                return chain
            index = next_
        raise DeviceError("descriptor chain loop")

    def pop_avail(self) -> Optional[int]:
        """Return the next posted chain head, or None if caught up."""
        avail_idx = self.mem.read_u32(self.avail_gpa)
        if self.last_avail_idx == avail_idx:
            return None
        pending = (avail_idx - self.last_avail_idx) & 0xFFFFFFFF
        if pending > self.size:
            # A sane driver can never post more chains than the ring
            # holds. Seeing more means the index word was corrupted --
            # e.g. a completion write landing inside the avail ring --
            # and chasing it would let a hostile guest wedge the host
            # in this drain loop forever.
            raise DeviceError(
                f"avail ring advanced by {pending} entries "
                f"(queue size {self.size}): corrupt index"
            )
        slot = self.last_avail_idx % self.size
        head = self.mem.read_u32(self.avail_gpa + 4 + slot * 4)
        self.last_avail_idx = (self.last_avail_idx + 1) & 0xFFFFFFFF
        self.requests += 1
        return head

    def push_used(self, head: int, written: int) -> None:
        used_idx = self.mem.read_u32(self.used_gpa)
        slot = used_idx % self.size
        base = self.used_gpa + 4 + slot * 8
        self.mem.write_u32(base, head)
        self.mem.write_u32(base + 4, written)
        self.mem.write_u32(self.used_gpa, (used_idx + 1) & 0xFFFFFFFF)


class _VirtQueuePorts(PortDevice):
    """Shared port plumbing for one queue block of 6 ports."""

    def __init__(self, mem, base: int, metrics=None):
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.virtio"))
        self.queue = VirtQueue(mem, metrics=self.metrics.scope("queue"))
        self.base = base

    def queue_port_read(self, offset: int) -> int:
        q = self.queue
        if offset == OFF_DESC:
            return q.desc_gpa
        if offset == OFF_AVAIL:
            return q.avail_gpa
        if offset == OFF_USED:
            return q.used_gpa
        if offset == OFF_SIZE:
            return q.size
        if offset == OFF_STATUS:
            return 1 if q.configured else 0
        raise DeviceError(f"virtio queue has no readable port offset {offset}")

    def queue_port_write(self, offset: int, value: int, on_kick) -> None:
        q = self.queue
        if offset == OFF_DESC:
            q.desc_gpa = value
        elif offset == OFF_AVAIL:
            q.avail_gpa = value
        elif offset == OFF_USED:
            q.used_gpa = value
        elif offset == OFF_SIZE:
            if value <= 0 or value > 4096:
                raise DeviceError(f"bad queue size {value}")
            q.size = value
        elif offset == OFF_KICK:
            if not q.configured:
                raise DeviceError("kick before queue configuration")
            q.kicks += 1
            on_kick()
        else:
            raise DeviceError(f"virtio queue has no writable port offset {offset}")


class VirtioBlockDevice(_VirtQueuePorts):
    """Paravirtual disk: one request queue.

    Fault site ``virtio.ring_stuck`` (with an ``injector`` attached):
    the device stops draining its ring -- kicks are counted but ignored,
    exactly the symptom of a lost interrupt or a wedged backend thread.
    The host-side :meth:`reset` clears the wedge and serves the backlog
    (:class:`~repro.faults.watchdog.DeviceTimeoutMonitor` drives it).
    """

    stalled_kicks = counter_attr()
    resets = counter_attr()
    completions = counter_attr()
    reads = counter_attr()
    writes = counter_attr()
    errors = counter_attr()

    def __init__(self, mem, irq: IRQLine, capacity_sectors: int = 2048,
                 base: int = VIRTIO_BLK_BASE, injector=None, metrics=None):
        super().__init__(mem, base, metrics=metrics)
        self.irq = irq
        self.capacity_sectors = capacity_sectors
        self.injector = injector
        self.data = bytearray(capacity_sectors * SECTOR_SIZE)
        self.stuck = False

    # -- detection/recovery contract (DeviceTimeoutMonitor) -----------------

    @property
    def ops_submitted(self) -> int:
        return self.queue.kicks

    @property
    def ops_completed(self) -> int:
        return self.completions

    def reset(self) -> None:
        """Clear a stuck ring and drain whatever the guest posted."""
        self.resets += 1
        self.stuck = False
        self._drain()

    def load_image(self, data: bytes, sector: int = 0) -> None:
        offset = sector * SECTOR_SIZE
        if offset + len(data) > len(self.data):
            raise DeviceError("image larger than disk")
        self.data[offset : offset + len(data)] = data

    def read_sectors(self, sector: int, count: int) -> bytes:
        off = sector * SECTOR_SIZE
        return bytes(self.data[off : off + count * SECTOR_SIZE])

    def port_read(self, port: int) -> int:
        return self.queue_port_read(port - self.base)

    def port_write(self, port: int, value: int) -> None:
        self.queue_port_write(port - self.base, value, self._drain)

    def _drain(self) -> None:
        if self.injector is not None and not self.stuck and (
            self.injector.fires("virtio.ring_stuck")
        ):
            self.stuck = True
        if self.stuck:
            # Ring wedged: the kick is swallowed, requests sit in the
            # avail ring untouched until the host reset()s the device.
            self.stalled_kicks += 1
            return
        processed = 0
        while True:
            head = self.queue.pop_avail()
            if head is None:
                break
            try:
                self._process(head)
            except MemoryError_ as err:
                # Subsystem boundary: guest handed us a descriptor that
                # points at unbacked memory. Surface it as a device
                # error, keeping the memory fault as the cause.
                raise DeviceError(
                    f"virtio-blk request {head}: descriptor references "
                    f"bad guest memory"
                ) from err
            processed += 1
        if processed:
            self.irq.raise_()

    def _process(self, head: int) -> None:
        chain = self.queue.collect_chain(head)
        if len(chain) != 3:
            self._complete(head, chain, BLK_S_ERROR)
            return
        hdr_addr, hdr_len, _ = chain[0]
        data_addr, data_len, data_flags = chain[1]
        if hdr_len < 12:
            self._complete(head, chain, BLK_S_ERROR)
            return
        req_type = self.queue.mem.read_u32(hdr_addr)
        sector = self.queue.mem.read_u32(hdr_addr + 4)
        count = self.queue.mem.read_u32(hdr_addr + 8)
        if (
            count <= 0
            or sector + count > self.capacity_sectors
            or count * SECTOR_SIZE > data_len
        ):
            self.errors += 1
            self._complete(head, chain, BLK_S_ERROR)
            return
        off = sector * SECTOR_SIZE
        nbytes = count * SECTOR_SIZE
        if req_type == BLK_T_READ:
            if not data_flags & DESC_F_WRITE:
                self.errors += 1
                self._complete(head, chain, BLK_S_ERROR)
                return
            self.queue.mem.write_bytes(data_addr, bytes(self.data[off : off + nbytes]))
            self.reads += 1
        elif req_type == BLK_T_WRITE:
            self.data[off : off + nbytes] = self.queue.mem.read_bytes(data_addr, nbytes)
            self.writes += 1
        else:
            self.errors += 1
            self._complete(head, chain, BLK_S_ERROR)
            return
        self._complete(head, chain, BLK_S_OK, written=nbytes)

    def _complete(self, head: int, chain, status: int, written: int = 0) -> None:
        status_addr, _status_len, _ = chain[-1]
        self.queue.mem.write_bytes(status_addr, bytes([status]))
        self.queue.push_used(head, written + 1)
        self.completions += 1


class VirtioNetDevice(PortDevice):
    """Paravirtual NIC: tx queue at ``base``, rx queue at ``base + 8``."""

    tx_frames = counter_attr()
    tx_bytes = counter_attr()
    rx_frames = counter_attr()
    rx_dropped = counter_attr()

    def __init__(self, mem, irq: IRQLine,
                 tx_sink: Optional[Callable[[bytes], None]] = None,
                 base: int = VIRTIO_NET_BASE, metrics=None):
        self.base = base
        self.irq = irq
        self.tx_sink = tx_sink
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry().scope("dev.virtio_net"))
        self.tx = _VirtQueuePorts(mem, base, metrics=self.metrics.scope("tx"))
        self.rx = _VirtQueuePorts(mem, base + 8,
                                  metrics=self.metrics.scope("rx"))
        self.mem = mem
        self.sent: List[bytes] = []

    def port_read(self, port: int) -> int:
        offset = port - self.base
        if offset < 8:
            return self.tx.queue_port_read(offset)
        return self.rx.queue_port_read(offset - 8)

    def port_write(self, port: int, value: int) -> None:
        offset = port - self.base
        if offset < 8:
            self.tx.queue_port_write(offset, value, self._drain_tx)
        else:
            # rx kick just publishes fresh buffers; nothing to process now.
            self.rx.queue_port_write(offset - 8, value, lambda: None)

    def _drain_tx(self) -> None:
        processed = 0
        while True:
            head = self.tx.queue.pop_avail()
            if head is None:
                break
            chain = self.tx.queue.collect_chain(head)
            frame = b"".join(
                self.mem.read_bytes(addr, length) for addr, length, _f in chain
            )
            self.tx_frames += 1
            self.tx_bytes += len(frame)
            self.sent.append(frame)
            if self.tx_sink is not None:
                self.tx_sink(frame)
            self.tx.queue.push_used(head, 0)
            processed += 1
        if processed:
            self.irq.raise_()

    def inject_rx(self, frame: bytes) -> bool:
        """Host side: copy a frame into the next posted rx buffer.

        Returns False (and counts a drop) when the guest has no buffers
        posted -- exactly how a real NIC overruns.
        """
        queue = self.rx.queue
        if not queue.configured:
            self.rx_dropped += 1
            return False
        head = queue.pop_avail()
        if head is None:
            self.rx_dropped += 1
            return False
        chain = queue.collect_chain(head)
        addr, length, flags = chain[0]
        if not flags & DESC_F_WRITE or len(frame) > length:
            self.rx_dropped += 1
            queue.push_used(head, 0)
            return False
        self.mem.write_bytes(addr, frame)
        queue.push_used(head, len(frame))
        self.rx_frames += 1
        self.irq.raise_()
        return True
