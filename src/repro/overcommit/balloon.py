"""Host-side ballooning policy.

The balloon *mechanism* is the guest-driven ``BALLOON_GIVE`` /
``BALLOON_TAKE`` hypercall pair; this module is the *policy*: given
per-VM configured sizes, working-set estimates, and the host's free
memory, compute how many pages each VM's balloon driver should inflate
(give up) or deflate (take back).

The allocation rule is VMware-style proportional sharing: each VM keeps
its working set plus a share of the remaining memory proportional to
its shares (weight), and idle memory is taxed -- memory neither VM's
WSS claims is reclaimed first from the VMs holding the most idle pages.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class BalloonTarget:
    """Policy output for one VM."""

    name: str
    current_pages: int
    target_pages: int

    @property
    def inflate_pages(self) -> int:
        """Pages the guest balloon should give up (0 if deflating)."""
        return max(0, self.current_pages - self.target_pages)

    @property
    def deflate_pages(self) -> int:
        return max(0, self.target_pages - self.current_pages)


@dataclass(frozen=True)
class _VMEntry:
    name: str
    current_pages: int
    wss_pages: int
    shares: int


class BalloonPolicy:
    """Idle-memory-tax proportional allocator."""

    def __init__(self, host_pages: int, reserve_pages: int = 0,
                 idle_tax: float = 0.75):
        if host_pages <= 0:
            raise ConfigError("host_pages must be positive")
        if not 0 <= reserve_pages < host_pages:
            raise ConfigError(
                f"reserve_pages {reserve_pages} must be in [0, host_pages); "
                f"host has {host_pages} pages"
            )
        if not 0.0 <= idle_tax <= 1.0:
            raise ConfigError("idle_tax must be in [0, 1]")
        self.host_pages = host_pages
        self.reserve_pages = reserve_pages
        self.idle_tax = idle_tax
        self._vms: List[_VMEntry] = []

    def add_vm(self, name: str, current_pages: int, wss_pages: int,
               shares: int = 1000) -> None:
        if any(vm.name == name for vm in self._vms):
            raise ConfigError(f"duplicate VM name {name!r} in balloon policy")
        if current_pages < 0 or wss_pages < 0:
            raise ConfigError("current_pages and wss_pages must be >= 0")
        if wss_pages > current_pages:
            wss_pages = current_pages
        if shares <= 0:
            raise ConfigError("shares must be positive")
        self._vms.append(_VMEntry(name, current_pages, wss_pages, shares))

    def compute_targets(self) -> List[BalloonTarget]:
        """Compute per-VM page targets under current pressure."""
        if not self._vms:
            return []
        available = self.host_pages - self.reserve_pages
        total_wss = sum(vm.wss_pages for vm in self._vms)
        total_current = sum(vm.current_pages for vm in self._vms)

        if total_current <= available:
            # No pressure: everyone keeps what they have.
            return [
                BalloonTarget(vm.name, vm.current_pages, vm.current_pages)
                for vm in self._vms
            ]

        targets: Dict[str, int] = {}
        if total_wss >= available:
            # Even working sets do not fit: scale WSS proportionally
            # (the remainder will hit host swap). ``available`` is
            # positive here (reserve < host), so total_wss > 0.
            for vm in self._vms:
                targets[vm.name] = max(
                    1, int(available * vm.wss_pages / total_wss)
                )
            # The per-VM floor of one page can push the aggregate past
            # ``available``; trim the largest targets back (never below
            # the floor) so the cap holds whenever n_vms <= available.
            overshoot = sum(targets.values()) - available
            if overshoot > 0:
                for vm in sorted(self._vms,
                                 key=lambda v: (-targets[v.name], v.name)):
                    cut = min(targets[vm.name] - 1, overshoot)
                    targets[vm.name] -= cut
                    overshoot -= cut
                    if overshoot <= 0:
                        break
        else:
            # Working sets fit. Distribute the surplus by shares, after
            # taxing idle memory (current - wss) at idle_tax.
            surplus = available - total_wss
            total_shares = sum(vm.shares for vm in self._vms)
            for vm in self._vms:
                idle = vm.current_pages - vm.wss_pages
                keep_idle = int(idle * (1.0 - self.idle_tax))
                share_part = int(surplus * vm.shares / total_shares)
                target = vm.wss_pages + min(keep_idle + share_part, idle)
                targets[vm.name] = min(target, vm.current_pages)
            # Never exceed what is available in aggregate.
            overshoot = sum(targets.values()) - available
            if overshoot > 0:
                for vm in sorted(
                    self._vms,
                    key=lambda v: targets[v.name] - v.wss_pages,
                    reverse=True,
                ):
                    slack = targets[vm.name] - vm.wss_pages
                    cut = min(slack, overshoot)
                    targets[vm.name] -= cut
                    overshoot -= cut
                    if overshoot <= 0:
                        break
        return [
            BalloonTarget(vm.name, vm.current_pages, targets[vm.name])
            for vm in self._vms
        ]
