"""Closed-loop memory pressure controller.

E7 measures the overcommit mechanisms -- ballooning, content-based
sharing, host swap -- in isolation; this module closes the loop the
experiment implies. On a configurable tick the controller:

1. samples per-VM working sets by access-bit scan
   (:func:`repro.overcommit.wss.count_accessed` over what accrued since
   the previous tick, then clears the bits for the next interval);
2. feeds the samples to a fresh :class:`~repro.overcommit.balloon.\
BalloonPolicy` and executes the resulting inflate targets through the
   balloon mechanism (:meth:`Hypervisor.balloon_give`), with hysteresis
   so a target wobbling by a few pages does not thrash the guest;
3. runs a periodic :class:`~repro.overcommit.sharing.PageSharer` scan;
4. falls back to :class:`~repro.overcommit.swap.HostSwap` eviction only
   when the free-frame count is still below the watermark -- swap is
   the correct-for-any-guest last resort, not the first lever.

Balloon victims are chosen conservatively: only guest frames that are
*cold* (ACCESSED bit clear), *unshared*, and whose backing frame is
**all zeroes**. A surrendered zero page that the guest later refaults is
rebuilt bit-identically by the demand-zero path, so the controller
never alters guest-visible memory contents -- the safety property the
correctness sweep in ``bench/e7_overcommit.py`` asserts.

Fault sites (see :mod:`repro.faults.injector`):

* ``overcommit.scan_stall`` -- the scheduled sharing scan stalls and is
  skipped this tick;
* ``overcommit.balloon_refuse`` -- a guest's balloon driver refuses the
  inflate request this tick (retried on the next).

Every tick appends a :class:`TickRecord` to :attr:`
MemoryPressureController.tick_log`; the serialized log is part of E7's
byte-reproducible manifest.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.hypervisor import Hypervisor
from repro.core.nested import NestedMMU
from repro.cpu.mmu import HModeMMU
from repro.core.vm import VirtualMachine
from repro.overcommit.balloon import BalloonPolicy
from repro.overcommit.sharing import PageSharer
from repro.overcommit.swap import HostSwap
from repro.overcommit.wss import accessed_gfns, clear_access_bits
from repro.util.errors import ConfigError, GuestError
from repro.util.units import PAGE_SIZE


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables for one :class:`MemoryPressureController`."""

    #: ignore inflate deltas at or below this many pages (hysteresis).
    hysteresis_pages: int = 8
    #: run a sharing scan every this many ticks (0 disables scanning).
    scan_period_ticks: int = 4
    #: swap-evict down to this many free frames only as a last resort.
    free_low_watermark: int = 16
    #: cap on pages ballooned out of one VM in one tick.
    max_balloon_per_tick: int = 256
    #: BalloonPolicy idle-memory tax.
    idle_tax: float = 0.75
    #: host pages the policy must leave unallocated to guests.
    reserve_pages: int = 0

    def validate(self) -> None:
        if self.hysteresis_pages < 0:
            raise ConfigError("hysteresis_pages must be >= 0")
        if self.scan_period_ticks < 0:
            raise ConfigError("scan_period_ticks must be >= 0")
        if self.free_low_watermark < 0:
            raise ConfigError("free_low_watermark must be >= 0")
        if self.max_balloon_per_tick <= 0:
            raise ConfigError("max_balloon_per_tick must be positive")


@dataclass
class TickRecord:
    """What one control iteration observed and did."""

    tick: int
    wss: Dict[str, int] = field(default_factory=dict)
    targets: Dict[str, int] = field(default_factory=dict)
    inflated: Dict[str, int] = field(default_factory=dict)
    balloon_refusals: int = 0
    scan_ran: bool = False
    scan_stalled: bool = False
    pages_merged: int = 0
    swap_evictions: int = 0
    free_frames_after: int = 0

    def as_dict(self) -> Dict:
        return {
            "tick": self.tick,
            "wss": dict(sorted(self.wss.items())),
            "targets": dict(sorted(self.targets.items())),
            "inflated": dict(sorted(self.inflated.items())),
            "balloon_refusals": self.balloon_refusals,
            "scan_ran": self.scan_ran,
            "scan_stalled": self.scan_stalled,
            "pages_merged": self.pages_merged,
            "swap_evictions": self.swap_evictions,
            "free_frames_after": self.free_frames_after,
        }


_ZERO_PAGE = bytes(PAGE_SIZE)


class MemoryPressureController:
    """Drive balloon, sharing, and swap from working-set feedback."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        config: Optional[ControllerConfig] = None,
        sharer: Optional[PageSharer] = None,
        swap: Optional[HostSwap] = None,
    ):
        self.hv = hypervisor
        self.config = config if config is not None else ControllerConfig()
        self.config.validate()
        self.sharer = sharer if sharer is not None else PageSharer(hypervisor)
        self.swap = swap if swap is not None else HostSwap(hypervisor)
        self.metrics = hypervisor.registry.scope("overcommit.controller")
        self.ticks = 0
        self.tick_log: List[TickRecord] = []
        self._vms: List[VirtualMachine] = []
        #: last WSS sample per VM, reused when a tick cannot sample
        #: (guest paging not up yet).
        self._last_wss: Dict[str, int] = {}

    # -- membership ---------------------------------------------------------

    def manage(self, vm: VirtualMachine) -> None:
        """Put one VM under control (wires host swap for it too)."""
        if any(v.name == vm.name for v in self._vms):
            raise ConfigError(f"VM {vm.name!r} already managed")
        self._vms.append(vm)
        self.swap.install(vm)

    @property
    def managed(self) -> List[VirtualMachine]:
        """Managed VMs that still exist on the hypervisor."""
        self._vms = [vm for vm in self._vms if vm.name in self.hv.vms]
        return list(self._vms)

    # -- the control loop ---------------------------------------------------

    def tick(self) -> TickRecord:
        """One control iteration: sample, retarget, balloon, scan, swap."""
        self.ticks += 1
        record = TickRecord(tick=self.ticks)
        vms = self.managed

        cold: Dict[str, Set[int]] = {}
        for vm in vms:
            record.wss[vm.name] = self._sample_wss(vm, cold)

        if vms:
            self._apply_balloon_targets(vms, cold, record)

        period = self.config.scan_period_ticks
        if period and self.ticks % period == 0 and len(vms) > 1:
            if self._fires("overcommit.scan_stall"):
                record.scan_stalled = True
                self.metrics.counter("scan_stalls").inc()
            else:
                scan = self.sharer.scan(vms)
                record.scan_ran = True
                record.pages_merged = scan.pages_merged

        shortfall = self.config.free_low_watermark - self.hv.allocator.free_frames
        if shortfall > 0:
            record.swap_evictions = self.swap.evict_some(shortfall)
            self.metrics.counter("swap_evictions").inc(record.swap_evictions)

        record.free_frames_after = self.hv.allocator.free_frames
        self.metrics.counter("ticks").inc()
        self.metrics.gauge("free_frames").set(record.free_frames_after)
        self.tick_log.append(record)
        return record

    def reclaim(self, pages: int, max_ticks: int = 8) -> int:
        """Tick until at least ``pages`` frames are free (best effort).

        This is the admission path: before a new VM is created the host
        asks the controller to make room. Ballooning and sharing are
        tried first (cheap demand-zero refaults); whatever is still
        missing after ``max_ticks`` is swap-evicted (expensive faults).
        Returns the number of free frames afterwards.
        """
        for _ in range(max_ticks):
            if self.hv.allocator.free_frames >= pages:
                break
            self.tick()
        missing = pages - self.hv.allocator.free_frames
        if missing > 0:
            self.swap.evict_some(missing)
        return self.hv.allocator.free_frames

    # -- tick pieces --------------------------------------------------------

    def _sample_wss(self, vm: VirtualMachine, cold: Dict[str, Set[int]]) -> int:
        """Access-bit sample since the last tick; primes ``cold`` with
        the VM's mapped-but-unaccessed gfns."""
        try:
            hot = accessed_gfns(vm)
            clear_access_bits(vm)
        except GuestError:
            # Paging not enabled yet: nothing is provably cold, and the
            # best WSS guess is the previous sample (or full residency).
            cold[vm.name] = set()
            wss = self._last_wss.get(vm.name, len(vm.guest_mem.map))
            self.metrics.counter("wss_sample_skipped").inc()
            return wss
        cold[vm.name] = set(vm.guest_mem.map) - hot
        wss = len(hot)
        self._last_wss[vm.name] = wss
        return wss

    def _apply_balloon_targets(
        self,
        vms: List[VirtualMachine],
        cold: Dict[str, Set[int]],
        record: TickRecord,
    ) -> None:
        host_pages = (
            self.hv.physmem.num_frames - self.hv.allocator.reserved_frames
        )
        policy = BalloonPolicy(
            host_pages=host_pages,
            reserve_pages=self.config.reserve_pages,
            idle_tax=self.config.idle_tax,
        )
        for vm in vms:
            policy.add_vm(
                vm.name,
                current_pages=len(vm.guest_mem.map),
                wss_pages=record.wss[vm.name],
            )
        by_name = {vm.name: vm for vm in vms}
        for target in policy.compute_targets():
            record.targets[target.name] = target.target_pages
            delta = target.inflate_pages
            if delta <= self.config.hysteresis_pages:
                continue
            vm = by_name[target.name]
            if self._fires("overcommit.balloon_refuse"):
                record.balloon_refusals += 1
                self.metrics.counter("balloon_refusals").inc()
                continue
            given = self._inflate(vm, cold[target.name], delta)
            if given:
                record.inflated[target.name] = given
                self.metrics.counter("balloon_inflated").inc(given)

    def _inflate(self, vm: VirtualMachine, cold: Set[int], want: int) -> int:
        """Balloon out up to ``want`` cold, unshared, all-zero pages.

        Only nested-MMU guests are ballooned: their refault path is the
        EPT dispatch chain, whose demand-zero tail rebuilds the page
        bit-identically. (A shadow-MMU guest's fill path cannot promise
        that, so the controller leaves it to sharing and swap.)
        """
        mmu = vm.vcpus[0].cpu.mmu
        if not isinstance(mmu, (NestedMMU, HModeMMU)):
            return 0
        want = min(want, self.config.max_balloon_per_tick)
        given = 0
        sharing = self.hv.sharing
        for gfn in sorted(cold):
            if given >= want:
                break
            hfn = vm.guest_mem.map.get(gfn)
            if hfn is None:
                continue
            if sharing is not None and sharing.handles(vm, gfn):
                continue
            if self.hv.physmem.read_frame(hfn) != _ZERO_PAGE:
                continue
            if self.hv.balloon_give(vm, gfn):
                given += 1
        return given

    # -- plumbing -----------------------------------------------------------

    def _fires(self, site: str) -> bool:
        injector = self.hv.injector
        return injector is not None and injector.fires(site)

    def serialized_log(self) -> List[Dict]:
        """Tick log as plain dicts (deterministic key order)."""
        return [record.as_dict() for record in self.tick_log]
