"""Working-set estimation by access-bit sampling.

The host periodically clears the ACCESSED bits in the guest's own page
tables (through guest-physical memory), lets the guest run, and counts
how many bits came back -- the classic sampling estimator VMware's
resource manager uses (statistically, over random samples; we scan
exhaustively since our guests are small).

Works against *real* guest page tables: the walker reads the guest page
directory named by the vCPU's (virtual) PTBR.
"""

from typing import Iterator, List, Set, Tuple

from repro.core.hypervisor import Hypervisor
from repro.core.modes import VirtMode
from repro.core.vm import VirtualMachine
from repro.cpu.isa import CSR
from repro.mem.paging import (
    ENTRIES_PER_TABLE,
    PTE_ACCESSED,
    PTE_PRESENT,
    pte_frame,
)
from repro.util.errors import GuestError
from repro.util.units import PAGE_SHIFT


def _guest_root(vm: VirtualMachine) -> int:
    vcpu = vm.vcpus[0]
    if vm.config.virt_mode is VirtMode.HW_ASSIST:
        root = vcpu.cpu.csr[CSR.PTBR]
    else:
        root = vcpu.vcsr[CSR.PTBR]
    if root == 0:
        raise GuestError(f"VM {vm.name} has not enabled paging yet")
    return root & ~0xFFF


def _iter_leaf_ptes(vm: VirtualMachine) -> Iterator[Tuple[int, int, int]]:
    """Yield (va, pte_gpa, pte) for present leaf entries."""
    root = _guest_root(vm)
    mem = vm.guest_mem
    for dir_idx in range(ENTRIES_PER_TABLE):
        pde = mem.read_u32(root + dir_idx * 4)
        if not pde & PTE_PRESENT:
            continue
        table_gpa = pte_frame(pde) << PAGE_SHIFT
        for tbl_idx in range(ENTRIES_PER_TABLE):
            pte_gpa = table_gpa + tbl_idx * 4
            pte = mem.read_u32(pte_gpa)
            if pte & PTE_PRESENT:
                yield ((dir_idx << 22) | (tbl_idx << 12), pte_gpa, pte)


def clear_access_bits(vm: VirtualMachine) -> int:
    """Clear A bits in every present guest PTE; returns entries cleared.

    Flushes the vCPU's TLB so subsequent touches re-walk and set A
    again (hardware would need the same shootdown).
    """
    cleared = 0
    for _va, pte_gpa, pte in _iter_leaf_ptes(vm):
        if pte & PTE_ACCESSED:
            vm.guest_mem.write_u32(pte_gpa, pte & ~PTE_ACCESSED)
            cleared += 1
    vm.vcpus[0].cpu.mmu.flush()
    return cleared


def count_accessed(vm: VirtualMachine) -> int:
    """Count present guest PTEs with the A bit set."""
    return sum(
        1 for _va, _gpa, pte in _iter_leaf_ptes(vm) if pte & PTE_ACCESSED
    )


def accessed_gfns(vm: VirtualMachine) -> Set[int]:
    """Guest frames whose PTE has the A bit set since the last clear.

    The complement (mapped frames *not* here) is the cold set a
    pressure controller prefers as balloon / eviction victims.
    """
    return {
        pte_frame(pte)
        for _va, _gpa, pte in _iter_leaf_ptes(vm)
        if pte & PTE_ACCESSED
    }


def estimate_wss(
    hypervisor: Hypervisor,
    vm: VirtualMachine,
    sample_instructions: int = 50_000,
    samples: int = 3,
) -> List[int]:
    """Run ``samples`` sampling intervals; returns pages touched in each.

    The max (or a high percentile) of the returned list is the
    working-set estimate the balloon policy consumes.
    """
    touched: List[int] = []
    for _ in range(samples):
        clear_access_bits(vm)
        hypervisor.run(vm, max_guest_instructions=sample_instructions)
        touched.append(count_accessed(vm))
    return touched
