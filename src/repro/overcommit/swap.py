"""Host-level swapping of guest frames.

The host evicts a guest frame by stashing its contents in a host-side
store and unmapping it everywhere. The next guest touch faults --
through the shadow fill path (``page_in_hook``) or an EPT violation --
and the page is brought back in, evicting something else if the host is
still tight. EPT faults arrive through the hypervisor's composable
dispatch chain: the swap-in handler claims only gfns it actually holds,
and a fallback-tier handler demand-allocates (and LRU-tracks) whatever
every other owner declined, so host swap composes with post-copy
migration instead of stealing its faults.

This is the transparent last-resort mechanism of the overcommit stack:
correct for any guest, but each fault costs a "disk" access, which is
why E7 shows swap-only overcommit collapsing where balloon + sharing
still perform.
"""

from collections import OrderedDict
from typing import Dict, Set, Tuple

from repro.core.hypervisor import Hypervisor
from repro.core.nested import NestedMMU
from repro.cpu.mmu import HModeMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import VirtualMachine
from repro.obs.registry import counter_attr
from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SHIFT


class HostSwap:
    """Per-hypervisor swap device with LRU-ish victim selection."""

    swap_outs = counter_attr()
    swap_ins = counter_attr()

    def __init__(self, hypervisor: Hypervisor, swap_in_cost_cycles: int = 200_000):
        self.hv = hypervisor
        self.swap_in_cost_cycles = swap_in_cost_cycles
        self.metrics = hypervisor.registry.scope("overcommit.swap")
        self._ops = hypervisor.registry.counter("overcommit.operations")
        self._store: Dict[Tuple[str, int], bytes] = {}
        #: Insertion-ordered map of resident (vm name, gfn) -> vm, used
        #: for victim selection when swapping in under pressure.
        self._resident_lru: "OrderedDict[Tuple[str, int], VirtualMachine]" = (
            OrderedDict()
        )
        #: VM names already wired by :meth:`install` (idempotence).
        self._installed: Set[str] = set()
        hypervisor.register_ept_fault_handler(self._ept_fault, name="swap_in")
        hypervisor.register_ept_fault_handler(
            self._demand_alloc, name="swap_demand", fallback=True
        )

    def install(self, vm: VirtualMachine) -> None:
        """Wire the page-in path for one VM and seed the LRU.

        Idempotent per VM: a second install neither re-seeds (which
        would scramble eviction order) nor double-wires the hook.
        """
        if vm.name in self._installed:
            return
        self._installed.add(vm.name)
        mmu = vm.vcpus[0].cpu.mmu
        if isinstance(mmu, ShadowMMU):
            mmu.page_in_hook = lambda gfn, _vm=vm: self.swap_in(_vm, gfn)
        for gfn in vm.guest_mem.map:
            self._resident_lru[(vm.name, gfn)] = vm

    # -- eviction -----------------------------------------------------------

    def swap_out(self, vm: VirtualMachine, gfn: int) -> None:
        """Evict one guest frame to the host store."""
        if not vm.guest_mem.is_mapped(gfn):
            raise MemoryError_(f"swap_out of unmapped gfn {gfn} in {vm.name}")
        if self.hv.sharing is not None and self.hv.sharing.handles(vm, gfn):
            raise MemoryError_("cannot swap a shared page; break it first")
        content = vm.guest_mem.read_gfn(gfn)
        mmu = vm.vcpus[0].cpu.mmu
        if isinstance(mmu, ShadowMMU):
            mmu.drop_gfn(gfn)
        elif isinstance(mmu, (NestedMMU, HModeMMU)):
            if mmu.ept.lookup(gfn << PAGE_SHIFT) is not None:
                mmu.ept_unmap(gfn)
        hfn = vm.guest_mem.unmap_page(gfn)
        self.hv.allocator.free(hfn)
        self._store[(vm.name, gfn)] = content
        self._resident_lru.pop((vm.name, gfn), None)
        self.swap_outs += 1
        self._ops.inc()

    def evict_some(self, count: int) -> int:
        """Evict up to ``count`` resident pages (oldest first)."""
        evicted = 0
        for key in list(self._resident_lru):
            if evicted >= count:
                break
            vm = self._resident_lru[key]
            name, gfn = key
            if name not in self.hv.vms or not vm.guest_mem.is_mapped(gfn):
                self._resident_lru.pop(key, None)
                continue
            if self.hv.sharing is not None and self.hv.sharing.handles(vm, gfn):
                self._resident_lru.move_to_end(key)
                continue
            self.swap_out(vm, gfn)
            evicted += 1
        return evicted

    # -- page-in ------------------------------------------------------------

    def _alloc_or_evict(self, vm: VirtualMachine, gfn: int, zero: bool) -> int:
        """Allocate a frame, evicting one first when the host is dry.

        Eviction can legitimately find nothing (every resident page
        shared, or the LRU empty); surface that as a typed
        :class:`MemoryError_` with context rather than an uncaught
        allocator failure mid-fault.
        """
        if self.hv.allocator.free_frames == 0:
            self.evict_some(1)
        if self.hv.allocator.free_frames == 0:
            raise MemoryError_(
                f"host out of frames backing gfn {gfn} of {vm.name}: "
                f"nothing evictable ({len(self._resident_lru)} LRU entries, "
                f"{self.swapped_pages} already swapped)"
            )
        return self.hv.allocator.alloc(zero=zero)

    def swap_in(self, vm: VirtualMachine, gfn: int) -> None:
        """Bring a swapped page back (charging the fault cost)."""
        key = (vm.name, gfn)
        content = self._store.get(key)
        if content is None:
            raise MemoryError_(f"gfn {gfn} of {vm.name} is not swapped")
        # Allocate before popping the store: a failed eviction must not
        # lose the only copy of the page.
        hfn = self._alloc_or_evict(vm, gfn, zero=False)
        del self._store[key]
        self.hv.physmem.write_frame(hfn, content)
        vm.guest_mem.map_page(gfn, hfn)
        self._resident_lru[key] = vm
        vm.stats.vmm_cycles += self.swap_in_cost_cycles
        self.swap_ins += 1
        self._ops.inc()

    def is_swapped(self, vm: VirtualMachine, gfn: int) -> bool:
        return (vm.name, gfn) in self._store

    @property
    def swapped_pages(self) -> int:
        return len(self._store)

    # -- EPT-fault chain entries --------------------------------------------

    def _ept_fault(self, vm: VirtualMachine, gfn: int, _access) -> bool:
        """Claim faults on pages this swap actually holds."""
        if not self.is_swapped(vm, gfn):
            return False
        self.swap_in(vm, gfn)
        return True

    def _demand_alloc(self, vm: VirtualMachine, gfn: int, _access) -> bool:
        """Fallback tier: demand-allocate what every owner declined,
        keeping the residency LRU complete."""
        vm.guest_mem.map_page(gfn, self._alloc_or_evict(vm, gfn, zero=True))
        self._resident_lru[(vm.name, gfn)] = vm
        return True
