"""Content-based page sharing with copy-on-write.

The scanner fingerprints mapped guest frames across every registered
VM, verifies candidate pairs byte-for-byte (fingerprints can collide),
re-points duplicate gfns at one canonical host frame, frees the
duplicates, and write-protects every sharer. A write to a shared page
takes the dirty-log exit path; the sharer claims it off the
hypervisor's write-fault dispatch chain and
:meth:`PageSharer.on_write_fault` breaks the share with a private copy.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.hypervisor import Hypervisor
from repro.core.nested import NestedMMU
from repro.cpu.mmu import HModeMMU
from repro.core.shadow import ShadowMMU
from repro.core.vm import VirtualMachine
from repro.obs.registry import counter_attr
from repro.util.errors import MemoryError_
from repro.util.units import PAGE_SHIFT


@dataclass
class ScanResult:
    """Outcome of one scan pass."""

    frames_scanned: int = 0
    pages_merged: int = 0
    frames_freed: int = 0
    shared_frames: int = 0

    @property
    def bytes_saved(self) -> int:
        return self.frames_freed << PAGE_SHIFT


class PageSharer:
    """KSM-style cross-VM page deduplication."""

    cow_breaks = counter_attr()

    def __init__(self, hypervisor: Hypervisor):
        self.hv = hypervisor
        self.metrics = hypervisor.registry.scope("overcommit.sharing")
        self._ops = hypervisor.registry.counter("overcommit.operations")
        #: canonical hfn -> reference count (number of gfn mappings).
        self.refcount: Dict[int, int] = {}
        #: (vm name, gfn) pairs currently sharing a frame.
        self._sharers: Set[Tuple[str, int]] = set()
        if hypervisor.sharing is not None:
            # Replacing a previous sharer: retire its COW claim first.
            hypervisor.unregister_write_fault_handler(
                hypervisor.sharing._claim_write_fault
            )
        hypervisor.sharing = self
        hypervisor.register_write_fault_handler(
            self._claim_write_fault, name="cow_break"
        )

    # -- scanning ---------------------------------------------------------

    def scan(self, vms: Optional[List[VirtualMachine]] = None) -> ScanResult:
        """One full pass: merge all byte-identical mapped frames."""
        if vms is None:
            vms = list(self.hv.vms.values())
        result = ScanResult()
        by_print: Dict[int, List[Tuple[VirtualMachine, int, int]]] = {}
        for vm in vms:
            for gfn, hfn in sorted(vm.guest_mem.map.items()):
                result.frames_scanned += 1
                fp = self.hv.physmem.frame_fingerprint(hfn)
                by_print.setdefault(fp, []).append((vm, gfn, hfn))
        for candidates in by_print.values():
            if len(candidates) < 2:
                continue
            self._merge_group(candidates, result)
        result.shared_frames = len(self.refcount)
        m = self.metrics
        m.counter("scans").inc()
        m.counter("frames_scanned").inc(result.frames_scanned)
        m.counter("pages_merged").inc(result.pages_merged)
        m.counter("frames_freed").inc(result.frames_freed)
        self._ops.inc()
        return result

    def _merge_group(self, candidates, result: ScanResult) -> None:
        # Group by exact content (fingerprints may collide).
        by_content: Dict[bytes, List] = {}
        for vm, gfn, hfn in candidates:
            by_content.setdefault(self.hv.physmem.read_frame(hfn), []).append(
                (vm, gfn, hfn)
            )
        for group in by_content.values():
            if len(group) < 2:
                continue
            # Within-group mapping counts per frame: a pre-existing
            # alias (two gfns already sharing one *untracked* frame)
            # must only be freed once its last group reference drops.
            alias_refs: Dict[int, int] = {}
            for _vm, _gfn, hfn in group:
                alias_refs[hfn] = alias_refs.get(hfn, 0) + 1
            canon_vm, canon_gfn, canon_hfn = group[0]
            self._protect(canon_vm, canon_gfn)
            self.refcount.setdefault(canon_hfn, 1)
            self._sharers.add((canon_vm.name, canon_gfn))
            for vm, gfn, hfn in group[1:]:
                if hfn == canon_hfn:
                    # Already aliasing the canonical frame. It still
                    # must be write-protected, refcounted, and tracked:
                    # an untracked alias lets a guest write mutate the
                    # shared frame under every other sharer.
                    if (vm.name, gfn) not in self._sharers:
                        self.refcount[canon_hfn] += 1
                        self._protect(vm, gfn)
                        self._sharers.add((vm.name, gfn))
                        result.pages_merged += 1
                    continue
                self._drop_mappings(vm, gfn)
                vm.guest_mem.unmap_page(gfn)
                self._sharers.discard((vm.name, gfn))
                alias_refs[hfn] -= 1
                if hfn in self.refcount:
                    # Previously shared: the refcount protocol decides.
                    if self.release_frame(hfn):
                        self.hv.allocator.free(hfn)
                        result.frames_freed += 1
                elif alias_refs[hfn] == 0:
                    # Untracked frame: free once the last group alias
                    # is gone (usually immediately -- aliases are rare).
                    self.hv.allocator.free(hfn)
                    result.frames_freed += 1
                vm.guest_mem.map_page(gfn, canon_hfn)
                self.refcount[canon_hfn] += 1
                self._remap(vm, gfn, canon_hfn)
                self._protect(vm, gfn)
                self._sharers.add((vm.name, gfn))
                result.pages_merged += 1

    # -- write-fault interception (claimed off the dispatch chain) --------

    def handles(self, vm: VirtualMachine, gfn: int) -> bool:
        return (vm.name, gfn) in self._sharers

    def _claim_write_fault(self, vm: VirtualMachine, gfn: int) -> bool:
        """Write-fault chain entry: claim shared pages, decline the rest."""
        if not self.handles(vm, gfn):
            return False
        self.on_write_fault(vm, gfn)
        return True

    def on_write_fault(self, vm: VirtualMachine, gfn: int) -> None:
        """Break copy-on-write: give the writer a private copy."""
        if (vm.name, gfn) not in self._sharers:
            raise MemoryError_(f"COW break for non-shared ({vm.name}, {gfn})")
        shared_hfn = vm.guest_mem.map[gfn]
        content = self.hv.physmem.read_frame(shared_hfn)
        self._drop_mappings(vm, gfn)
        vm.guest_mem.unmap_page(gfn)
        new_hfn = self.hv.allocator.alloc(zero=False)
        self.hv.physmem.write_frame(new_hfn, content)
        vm.guest_mem.map_page(gfn, new_hfn)
        self._remap(vm, gfn, new_hfn)
        self._unprotect(vm, gfn)
        self._sharers.discard((vm.name, gfn))
        self.cow_breaks += 1
        self._ops.inc()
        if self.release_frame(shared_hfn):
            # Last reference went away entirely (e.g. balloon raced us).
            self.hv.allocator.free(shared_hfn)

    def drop_mapping(self, vm: VirtualMachine, gfn: int, hfn: int) -> bool:
        """One (vm, gfn) -> hfn mapping is going away for good (balloon
        give, VM teardown): forget its share tracking and drop the
        frame reference. Returns True iff the caller must free ``hfn``.
        """
        self._sharers.discard((vm.name, gfn))
        return self.release_frame(hfn)

    def release_frame(self, hfn: int) -> bool:
        """Drop one mapping reference.

        Returns True iff no references remain and the caller must free
        the frame. A never-shared frame trivially returns True (the
        caller held its only reference).
        """
        count = self.refcount.get(hfn)
        if count is None:
            return True
        count -= 1
        if count == 0:
            del self.refcount[hfn]
            return True
        self.refcount[hfn] = count
        return False

    @property
    def shared_mappings(self) -> int:
        return len(self._sharers)

    # -- MMU plumbing ------------------------------------------------------

    def _mmu(self, vm: VirtualMachine):
        return vm.vcpus[0].cpu.mmu

    def _protect(self, vm: VirtualMachine, gfn: int) -> None:
        self._mmu(vm).write_protect_gfn(gfn)

    def _unprotect(self, vm: VirtualMachine, gfn: int) -> None:
        self._mmu(vm).unprotect_gfn(gfn)

    def _drop_mappings(self, vm: VirtualMachine, gfn: int) -> None:
        mmu = self._mmu(vm)
        if isinstance(mmu, ShadowMMU):
            mmu.drop_gfn(gfn)
        elif isinstance(mmu, (NestedMMU, HModeMMU)):
            if mmu.ept.lookup(gfn << PAGE_SHIFT) is not None:
                mmu.ept_unmap(gfn)

    def _remap(self, vm: VirtualMachine, gfn: int, hfn: int) -> None:
        mmu = self._mmu(vm)
        if isinstance(mmu, (NestedMMU, HModeMMU)):
            mmu.ept_map(gfn, hfn)
        # Shadow MMUs refill lazily on the next access.
