"""Memory overcommit (experiment E7).

Functional mechanisms over real VMs (instruction engine):

* :mod:`repro.overcommit.sharing` -- content-based page sharing: a
  KSM-style scanner fingerprints guest frames, merges duplicates across
  VMs onto one host frame, write-protects sharers, and breaks
  copy-on-write on the first write fault (Waldspurger, OSDI'02).
* :mod:`repro.overcommit.swap` -- host-level swap: evicted guest frames
  are stashed host-side and paged back in on demand through the shadow
  fill hook / EPT violation hook.
* :mod:`repro.overcommit.wss` -- working-set estimation by access-bit
  sampling over the guest's real page tables.
* Ballooning itself is a hypercall (``BALLOON_GIVE``/``BALLOON_TAKE``
  in :class:`repro.core.hypervisor.HypercallNumbers`) driven by the
  guest; :mod:`repro.overcommit.balloon` provides the host-side policy
  computing per-VM targets.

* :mod:`repro.overcommit.controller` -- the closed loop over all of the
  above: per-tick WSS sampling feeds balloon targets (with hysteresis),
  periodic sharing scans reclaim duplicates, and host swap is the
  watermark-triggered last resort.

Plus :mod:`repro.overcommit.model`: the analytic host-memory model that
generates E7's overcommit-ratio versus degradation table.
"""

from repro.overcommit.sharing import PageSharer, ScanResult
from repro.overcommit.swap import HostSwap
from repro.overcommit.wss import (
    accessed_gfns,
    clear_access_bits,
    count_accessed,
    estimate_wss,
)
from repro.overcommit.balloon import BalloonPolicy, BalloonTarget
from repro.overcommit.controller import (
    ControllerConfig,
    MemoryPressureController,
    TickRecord,
)
from repro.overcommit.model import (
    PolicyOutcome,
    VMDemand,
    PolicyKind,
    evaluate_policy,
)

__all__ = [
    "PageSharer",
    "ScanResult",
    "HostSwap",
    "MemoryPressureController",
    "ControllerConfig",
    "TickRecord",
    "accessed_gfns",
    "estimate_wss",
    "clear_access_bits",
    "count_accessed",
    "BalloonPolicy",
    "BalloonTarget",
    "PolicyOutcome",
    "VMDemand",
    "PolicyKind",
    "evaluate_policy",
]
