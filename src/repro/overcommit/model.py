"""Analytic host-memory model: the generator for experiment E7.

Given a host and a set of VM demands, evaluate each reclamation policy
stack and report the per-VM resident allocations and resulting
performance. Performance follows the standard miss-cost model: a VM
whose resident memory covers its working set runs at full speed; below
that, each missing working-set page turns the corresponding accesses
into swap faults::

    throughput = 1 / (h + (1 - h) * miss_penalty),  h = resident / wss

(uniform access over the WSS -- a pessimistic but standard closure).
"""

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import ConfigError


class PolicyKind(enum.Enum):
    """Reclamation stacks compared in E7."""

    SWAP_ONLY = "swap_only"
    BALLOON = "balloon"
    BALLOON_SHARE = "balloon_share"


@dataclass(frozen=True)
class VMDemand:
    """One VM's memory behaviour."""

    name: str
    configured_pages: int
    wss_pages: int
    #: Fraction of this VM's pages whose content duplicates other VMs'
    #: (common OS image, zero pages) -- reclaimable by sharing.
    shareable_fraction: float = 0.0

    def validate(self) -> None:
        if self.configured_pages <= 0:
            raise ConfigError("configured_pages must be positive")
        if not 0 < self.wss_pages <= self.configured_pages:
            raise ConfigError("wss must be in (0, configured]")
        if not 0.0 <= self.shareable_fraction <= 1.0:
            raise ConfigError("shareable_fraction must be in [0, 1]")


@dataclass(frozen=True)
class PolicyOutcome:
    """E7 table row."""

    policy: PolicyKind
    num_vms: int
    overcommit_ratio: float
    resident: Dict[str, int]
    swapped_pages: int
    shared_saved_pages: int
    #: Per-VM normalized throughput in [0, 1].
    throughput: Dict[str, float]

    @property
    def aggregate_throughput(self) -> float:
        return sum(self.throughput.values())

    @property
    def min_throughput(self) -> float:
        return min(self.throughput.values())


def evaluate_policy(
    host_pages: int,
    vms: List[VMDemand],
    policy: PolicyKind,
    miss_penalty: float = 1000.0,
    lru_efficiency: float = 0.9,
) -> PolicyOutcome:
    """Evaluate one policy stack on one host configuration.

    ``lru_efficiency`` models host-level swapping's blindness: without
    guest cooperation the host's global LRU keeps only this fraction of
    each VM's hot set resident once swapping is active (double paging,
    guest/host replacement conflicts -- Waldspurger's motivation for
    ballooning). Ballooning releases only guest-idle memory, so it is
    not penalized.
    """
    if host_pages <= 0:
        raise ConfigError("host_pages must be positive")
    if not 0.0 < lru_efficiency <= 1.0:
        raise ConfigError("lru_efficiency must be in (0, 1]")
    for vm in vms:
        vm.validate()
    configured = {vm.name: vm.configured_pages for vm in vms}
    total_configured = sum(configured.values())

    # Effective footprint each VM *needs resident* for full speed, and
    # the demand each one places on host memory, by policy.
    if policy is PolicyKind.SWAP_ONLY:
        # No guest cooperation: the host must back every configured
        # page; under pressure, residency shrinks proportionally.
        demand = dict(configured)
        shared_saved = 0
    elif policy is PolicyKind.BALLOON:
        # Balloon returns idle pages: demand shrinks to the WSS.
        demand = {vm.name: vm.wss_pages for vm in vms}
        shared_saved = 0
    else:
        # Balloon + sharing: WSS, of which the shareable fraction
        # collapses to single host copies. Model: one copy of the
        # shareable content is charged to the aggregate, not per VM.
        demand = {}
        shareable_total = 0
        max_shareable = 0
        for vm in vms:
            shareable = int(vm.wss_pages * vm.shareable_fraction)
            demand[vm.name] = vm.wss_pages - shareable
            shareable_total += shareable
            max_shareable = max(max_shareable, shareable)
        # One canonical copy stays resident.
        shared_saved = shareable_total - max_shareable
        demand["__shared__"] = max_shareable

    total_demand = sum(demand.values())
    resident: Dict[str, int] = {}
    if total_demand <= host_pages:
        for vm in vms:
            resident[vm.name] = demand[vm.name]
        swapped = 0
    else:
        scale = host_pages / total_demand
        for vm in vms:
            resident[vm.name] = max(1, int(demand[vm.name] * scale))
        swapped = total_demand - sum(
            resident[vm.name] for vm in vms
        ) - int(demand.get("__shared__", 0) * scale)
        swapped = max(0, swapped)

    swapping_active = total_demand > host_pages
    throughput: Dict[str, float] = {}
    for vm in vms:
        if policy is PolicyKind.BALLOON_SHARE:
            # Shared pages are resident (the canonical copy), so the
            # VM's effective residency includes its shareable WSS part.
            shareable = int(vm.wss_pages * vm.shareable_fraction)
            have = resident[vm.name] + shareable * (
                1.0 if total_demand <= host_pages
                else host_pages / total_demand
            )
        else:
            have = resident[vm.name]
        h = min(1.0, have / vm.wss_pages)
        if policy is PolicyKind.SWAP_ONLY and swapping_active:
            h = min(h, lru_efficiency)
        throughput[vm.name] = 1.0 / (h + (1.0 - h) * miss_penalty)

    return PolicyOutcome(
        policy=policy,
        num_vms=len(vms),
        overcommit_ratio=total_configured / host_pages,
        resident=resident,
        swapped_pages=swapped,
        shared_saved_pages=shared_saved,
        throughput=throughput,
    )
